"""The ALock (paper §5, Algorithms 1–4).

``Lock()`` first classifies the access by the pointer's home node
(local vs remote — Definitions 4.1/4.2), then

1. competes in that cohort's budgeted **MCS queue** (Algorithm 3): swap
   the thread's descriptor onto the cohort tail; if the queue was empty
   the thread leads the cohort, otherwise it links behind its
   predecessor and spins *locally* on its descriptor's budget until the
   lock is passed;
2. if it leads the cohort (queue was empty), or if it was passed a
   budget of 0 (cohort must yield), competes in the modified
   **Peterson's algorithm** (Algorithm 4) against the other cohort's
   leader.

``Unlock()`` CASes the cohort tail back to NULL — which simultaneously
clears the Peterson flag — or, if a successor has queued, passes the
lock by writing ``budget − 1`` into the successor's descriptor.

The atomicity discipline (why this is correct without loopback): every
ALock word is RMW'd by at most one *API family* — ``tail_l`` only by
local CAS, ``tail_r`` only by rCAS, ``victim`` only by plain
(local or remote) reads/writes; descriptor words see plain writes by the
predecessor and plain reads by the owner.  Only the 'Yes' cells of
Table 1 are ever exercised, which the cluster's race auditor verifies on
every test run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.common.errors import ConfigError, ProtocolError
from repro.locks.alock import peterson
from repro.locks.alock.descriptors import (
    Descriptor,
    OFF_BUDGET,
    OFF_NEXT,
    WAITING,
    descriptor_pair,
    descriptor_pools,
)
from repro.locks.base import (
    DistributedLock,
    observed_acquire,
    observed_release,
    register_lock_type,
)
from repro.locks.layout import ALOCK_LAYOUT
from repro.memory.pointer import RdmaPointer, ptr_addr
from repro.obs import COHORT_HANDOVER, MCS_QUEUE_WAIT

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster import Cluster, ThreadContext

#: Paper's chosen budgets after the Fig. 4 sweep (§6.1).
DEFAULT_LOCAL_BUDGET = 5
DEFAULT_REMOTE_BUDGET = 20


class ALock(DistributedLock):
    """One ALock instance: a 64-byte record on ``home_node``.

    Args:
        cluster: the cluster to allocate in.
        home_node: node holding the lock record (locality is judged
            against this).
        local_budget: consecutive local-cohort passes before yielding.
        remote_budget: consecutive remote-cohort passes before yielding.
        strict_remote_rdma: when True (Algorithm 3 verbatim), the remote
            cohort uses RDMA verbs for *all* its lock interactions, even
            when a queue neighbor's descriptor happens to live on the
            caller's own node (loopback).  False short-circuits those to
            shared-memory ops — an ablation, not the paper's algorithm.
        allow_nesting: the paper's Algorithm 1 gives each thread one
            descriptor per cohort, capping it at one in-flight
            acquisition per flavor.  True draws descriptors from a
            per-thread pool instead, so a thread may hold several ALocks
            at once (lock-ordering discipline is the caller's job) — an
            extension used by the KV store's multi-bucket operations.
        bug: opt-in seeded defect for the schedule-exploration harness
            (see :data:`ALock.BUGS`); "" (default) is the correct
            algorithm.  Never set outside mutation tests.
    """

    kind = "alock"

    #: Seeded schedule-dependent defects (mutation-testing targets):
    #: ``no_victim_check`` drops the victim clause from the local
    #: leader's Peterson wait (classic deadlock when the victim word
    #: settles on the other cohort); ``skip_budget_wait`` makes unlock
    #: sample the successor link once instead of waiting for it,
    #: abandoning the budget handoff when the successor is still inside
    #: its swap-to-link window.
    BUGS = ("no_victim_check", "skip_budget_wait")

    def __init__(self, cluster: "Cluster", home_node: int, name: str = "",
                 local_budget: int = DEFAULT_LOCAL_BUDGET,
                 remote_budget: int = DEFAULT_REMOTE_BUDGET,
                 strict_remote_rdma: bool = True,
                 allow_nesting: bool = False, bug: str = ""):
        super().__init__(cluster, home_node, name)
        if local_budget < 1 or remote_budget < 1:
            raise ConfigError("budgets must be >= 1 (0 would deadlock the cohort)")
        if bug and bug not in self.BUGS:
            raise ConfigError(
                f"unknown seeded bug {bug!r}; known: {', '.join(self.BUGS)}")
        self.local_budget = local_budget
        self.remote_budget = remote_budget
        self.strict_remote_rdma = strict_remote_rdma
        self.allow_nesting = allow_nesting
        self.bug = bug
        self.base_ptr = cluster.alloc_on(home_node, ALOCK_LAYOUT.size)
        self.tail_r_ptr = ALOCK_LAYOUT.addr_of(self.base_ptr, "tail_r")
        self.tail_l_ptr = ALOCK_LAYOUT.addr_of(self.base_ptr, "tail_l")
        self.victim_ptr = ALOCK_LAYOUT.addr_of(self.base_ptr, "victim")
        # name the record's words so watch events, deadlock messages and
        # post-mortem wait-for graphs say "alock[k7].tail_l", not 0x1040
        region = cluster.regions[home_node]
        region.label_word(ptr_addr(self.tail_r_ptr), f"{self.name}.tail_r")
        region.label_word(ptr_addr(self.tail_l_ptr), f"{self.name}.tail_l")
        region.label_word(ptr_addr(self.victim_ptr), f"{self.name}.victim")
        self._sessions: dict[int, tuple[str, Descriptor]] = {}
        # statistics (per-lock protocol behaviour, used by ablations)
        self.passes = {"local": 0, "remote": 0}
        self.reacquires = {"local": 0, "remote": 0}
        self.leader_acquires = {"local": 0, "remote": 0}

    # -- public protocol ----------------------------------------------------
    @observed_acquire
    def lock(self, ctx: "ThreadContext"):
        """Algorithm 2 ``Lock(rdma_ptr<ALock>)``."""
        if ctx.gid in self._sessions:
            raise ProtocolError(f"{ctx.actor} re-locking {self.name} (not reentrant)")
        if self.allow_nesting:
            pools = descriptor_pools(ctx)
        else:
            pair = descriptor_pair(ctx)
        slot = 0 if ctx.is_local(self.base_ptr) else 1
        cohort = "local" if slot == 0 else "remote"
        if ctx.spans.enabled:
            ctx.spans.annotate(ctx.actor, cohort=cohort)
        desc = pools[slot].acquire() if self.allow_nesting else pair[slot]
        # begin() runs before the cleanup guard: if it raises, the
        # descriptor is owned by another in-flight acquisition and must
        # NOT be reset or returned to the pool here.
        yield from desc.begin()
        try:
            if slot == 0:
                yield from self._lock_local(ctx, desc)
            else:
                yield from self._lock_remote(ctx, desc)
        except BaseException:
            # Failed acquisition (e.g. a VerbTimeout from the fault
            # layer): the descriptor must come back, or the pool leaks
            # one record per failure and the paper's one-descriptor
            # discipline wedges the thread permanently.
            desc.end()
            if self.allow_nesting:
                pools[slot].release(desc)
            raise
        # §5.2: atomic thread fence after locking.
        yield from ctx.fence()
        self._sessions[ctx.gid] = (cohort, desc)
        self._note_acquired(ctx)
        if ctx.tracer.enabled:
            ctx.trace("cs.enter", self.name)

    @observed_release
    def unlock(self, ctx: "ThreadContext"):
        """Algorithm 2 ``Unlock(rdma_ptr<ALock>)``."""
        session = self._sessions.pop(ctx.gid, None)
        if session is None:
            raise ProtocolError(f"{ctx.actor} unlocking {self.name} without holding it")
        cohort, desc = session
        # §5.2: atomic thread fence before unlocking.
        yield from ctx.fence()
        # The oracle is updated before the release op is issued: the op's
        # linearization point is when it *lands*, which a successor can
        # observe before this generator resumes (see base.py).
        self._note_released(ctx)
        if ctx.tracer.enabled:
            ctx.trace("cs.exit", self.name)
        if cohort == "local":
            yield from self._unlock_local(ctx, desc)
        else:
            yield from self._unlock_remote(ctx, desc)
        if self.allow_nesting:
            pools = descriptor_pools(ctx)
            (pools[0] if cohort == "local" else pools[1]).release(desc)

    # -- remote cohort (Algorithm 3 verbatim) ------------------------------
    def _swap_tail_remote(self, ctx: "ThreadContext", new: int):
        """Atomic swap emulated by an rCAS retry loop (IB verbs have CAS
        and FAA but no swap).  Returns the previous tail value."""
        expected = 0
        while True:
            old = yield from ctx.r_cas(self.tail_r_ptr, expected, new)
            if old == expected:
                return old
            expected = old

    def _lock_remote(self, ctx: "ThreadContext", desc: Descriptor):
        prev = yield from self._swap_tail_remote(ctx, desc.ptr)
        if ctx.tracer.enabled:
            ctx.trace("mcs.swap", f"{self.name} cohort=REMOTE prev={RdmaPointer(prev)}")
        if prev == 0:
            # Queue was empty: cohort leader; lock was NOT passed.
            yield from ctx.write(desc.budget_ptr, self.remote_budget)
            self.leader_acquires["remote"] += 1
            yield from peterson.acquire_remote(ctx, self)
            return
        # Link behind the predecessor, then spin locally on our budget.
        yield from self._neighbor_write(ctx, prev + OFF_NEXT, desc.ptr)
        fl = ctx._flight
        if fl is not None:
            fl.note(ctx.actor, "lock.wait", self.name, "budget")
        sp = (ctx.spans.start(ctx.actor, MCS_QUEUE_WAIT, cohort="remote")
              if ctx.spans.enabled else None)
        budget = yield from ctx.wait_local(
            desc.budget_ptr, lambda b: b != WAITING, signed=True)
        if sp is not None:
            ctx.spans.end(sp, budget=budget)
        self.passes["remote"] += 1
        if ctx.tracer.enabled:
            ctx.trace("mcs.passed", f"{self.name} cohort=REMOTE budget={budget}")
        if budget == 0:
            # Budget exhausted: yield to the other cohort, then reacquire.
            self.reacquires["remote"] += 1
            yield from peterson.acquire_remote(ctx, self)
            yield from ctx.write(desc.budget_ptr, self.remote_budget)

    def _unlock_remote(self, ctx: "ThreadContext", desc: Descriptor):
        old = yield from ctx.r_cas(self.tail_r_ptr, desc.ptr, 0)
        if old != desc.ptr:
            # A successor is enqueued (or still linking): wait for the
            # link, then pass the lock with a decremented budget.
            if self.bug == "skip_budget_wait":
                # Seeded defect: sample the link once instead of waiting.
                # Fires only when the unlock lands inside the successor's
                # swap-to-link window — the successor then spins forever
                # on a budget nobody will write.
                nxt = yield from ctx.read(desc.next_ptr)
                if nxt == 0:
                    if ctx.tracer.enabled:
                        ctx.trace("mcs.release",
                                  f"{self.name} cohort=REMOTE handoff abandoned")
                    desc.end()
                    # simlint: ignore[deep-protocol] -- seeded skip_budget_wait
                    return
                budget = yield from ctx.read(desc.budget_ptr, signed=True)
                yield from self._neighbor_write(ctx, nxt + OFF_BUDGET,
                                                budget - 1)
                if ctx.tracer.enabled:
                    ctx.trace("mcs.pass",
                              f"{self.name} cohort=REMOTE -> budget {budget - 1}")
                desc.end()
                return
            fl = ctx._flight
            if fl is not None:
                fl.note(ctx.actor, "lock.wait", self.name, "next")
            sp = (ctx.spans.start(ctx.actor, COHORT_HANDOVER, cohort="remote")
                  if ctx.spans.enabled else None)
            nxt = yield from ctx.wait_local(desc.next_ptr, lambda p: p != 0)
            budget = yield from ctx.read(desc.budget_ptr, signed=True)
            yield from self._neighbor_write(ctx, nxt + OFF_BUDGET, budget - 1)
            if sp is not None:
                ctx.spans.end(sp, budget=budget - 1)
            if ctx.tracer.enabled:
                ctx.trace("mcs.pass", f"{self.name} cohort=REMOTE -> budget {budget - 1}")
        else:
            if ctx.tracer.enabled:
                ctx.trace("mcs.release", f"{self.name} cohort=REMOTE tail cleared")
        desc.end()

    def _neighbor_write(self, ctx: "ThreadContext", ptr: int, value: int):
        """Write into a queue neighbor's descriptor from the remote
        cohort.  Algorithm 3 uses ``rWrite`` unconditionally; the
        non-strict ablation short-circuits same-node targets."""
        if self.strict_remote_rdma or not ctx.is_local(ptr):
            yield from ctx.r_write(ptr, value)
        else:
            yield from ctx.write(ptr, value)

    # -- local cohort ("each remote access replaced with a local one") ----
    def _swap_tail_local(self, ctx: "ThreadContext", new: int):
        expected = 0
        while True:
            old = yield from ctx.cas(self.tail_l_ptr, expected, new)
            if old == expected:
                return old
            expected = old

    def _lock_local(self, ctx: "ThreadContext", desc: Descriptor):
        prev = yield from self._swap_tail_local(ctx, desc.ptr)
        if ctx.tracer.enabled:
            ctx.trace("mcs.swap", f"{self.name} cohort=LOCAL prev={RdmaPointer(prev)}")
        if prev == 0:
            yield from ctx.write(desc.budget_ptr, self.local_budget)
            self.leader_acquires["local"] += 1
            yield from peterson.acquire_local(ctx, self)
            return
        # Predecessor is necessarily a thread on this same node.
        yield from ctx.write(prev + OFF_NEXT, desc.ptr)
        fl = ctx._flight
        if fl is not None:
            fl.note(ctx.actor, "lock.wait", self.name, "budget")
        sp = (ctx.spans.start(ctx.actor, MCS_QUEUE_WAIT, cohort="local")
              if ctx.spans.enabled else None)
        budget = yield from ctx.wait_local(
            desc.budget_ptr, lambda b: b != WAITING, signed=True)
        if sp is not None:
            ctx.spans.end(sp, budget=budget)
        self.passes["local"] += 1
        if ctx.tracer.enabled:
            ctx.trace("mcs.passed", f"{self.name} cohort=LOCAL budget={budget}")
        if budget == 0:
            self.reacquires["local"] += 1
            yield from peterson.acquire_local(ctx, self)
            yield from ctx.write(desc.budget_ptr, self.local_budget)

    def _unlock_local(self, ctx: "ThreadContext", desc: Descriptor):
        old = yield from ctx.cas(self.tail_l_ptr, desc.ptr, 0)
        if old != desc.ptr:
            if self.bug == "skip_budget_wait":
                # Seeded defect: see _unlock_remote.
                nxt = yield from ctx.read(desc.next_ptr)
                if nxt == 0:
                    if ctx.tracer.enabled:
                        ctx.trace("mcs.release",
                                  f"{self.name} cohort=LOCAL handoff abandoned")
                    desc.end()
                    # simlint: ignore[deep-protocol] -- seeded skip_budget_wait
                    return
                budget = yield from ctx.read(desc.budget_ptr, signed=True)
                yield from ctx.write(nxt + OFF_BUDGET, budget - 1)
                if ctx.tracer.enabled:
                    ctx.trace("mcs.pass",
                              f"{self.name} cohort=LOCAL -> budget {budget - 1}")
                desc.end()
                return
            fl = ctx._flight
            if fl is not None:
                fl.note(ctx.actor, "lock.wait", self.name, "next")
            sp = (ctx.spans.start(ctx.actor, COHORT_HANDOVER, cohort="local")
                  if ctx.spans.enabled else None)
            nxt = yield from ctx.wait_local(desc.next_ptr, lambda p: p != 0)
            budget = yield from ctx.read(desc.budget_ptr, signed=True)
            yield from ctx.write(nxt + OFF_BUDGET, budget - 1)
            if sp is not None:
                ctx.spans.end(sp, budget=budget - 1)
            if ctx.tracer.enabled:
                ctx.trace("mcs.pass", f"{self.name} cohort=LOCAL -> budget {budget - 1}")
        else:
            if ctx.tracer.enabled:
                ctx.trace("mcs.release", f"{self.name} cohort=LOCAL tail cleared")
        desc.end()

    # -- introspection -------------------------------------------------------
    def is_locked(self) -> bool:
        """``qIsLocked`` over both cohorts (oracle read, no simulated cost)."""
        region = self.cluster.regions[self.home_node]
        from repro.memory.pointer import ptr_addr

        return (region.peek(ptr_addr(self.tail_r_ptr)) != 0
                or region.peek(ptr_addr(self.tail_l_ptr)) != 0)


def _make_alock(cluster, home_node, **options):
    return ALock(cluster, home_node, **options)


register_lock_type("alock", _make_alock)
