"""ALock's modified Peterson's algorithm (paper §5.2, Algorithm 4).

The two "processes" of the classic algorithm are the *cohort leaders*.
The classic ``flag`` array is replaced by the two MCS tails embedded in
the ALock record — a non-NULL tail means that cohort is interested in or
holds the lock, so locking/unlocking the cohort's MCS queue sets/unsets
the Peterson flag for free.  Only the ``victim`` word is written here.

The same procedure serves both the first acquisition (Algorithm 2, when
``qLock`` returned "not passed") and ``pReacquire`` (budget exhausted):
announce yourself as victim, then wait until the *other* cohort is
unlocked or has been made the victim.

Asymmetry, per the paper's cost analysis (§6.1): the **local** leader
uses shared-memory ops and parks event-style on the two words, while the
**remote** leader must *remote-spin* with ``rRead`` pairs — the reason
the remote budget should be larger than the local one (Fig. 4).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.locks.layout import COHORT_LOCAL, COHORT_REMOTE
from repro.obs import PETERSON_COMPETE

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster import ThreadContext
    from repro.locks.alock.alock import ALock


def acquire_local(ctx: "ThreadContext", lock: "ALock"):
    """AcquireGlobal for the local-cohort leader.

    Sets ``victim = LOCAL`` (local store + fence), then waits until the
    remote tail is NULL or the victim is no longer LOCAL.  The wait is
    event-driven on the two words — zero traffic while parked.
    """
    if ctx.tracer.enabled:
        ctx.trace("peterson.enter", f"{lock.name} cohort=LOCAL")
    fl = ctx._flight
    if fl is not None:
        fl.note(ctx.actor, "lock.wait", lock.name, "peterson-local")
    sp = (ctx.spans.start(ctx.actor, PETERSON_COMPETE, cohort="local")
          if ctx.spans.enabled else None)
    yield from ctx.write(lock.victim_ptr, COHORT_LOCAL)
    yield from ctx.fence()

    def check():
        tail_r = yield from ctx.read(lock.tail_r_ptr)
        if tail_r == 0:
            return "remote-unlocked"
        if lock.bug == "no_victim_check":
            # Seeded defect: the not-victim clause is what lets the local
            # leader proceed while the remote cohort is still queued; a
            # leader without it waits for a fully-drained remote tail —
            # forever, once the remote side is itself waiting on the
            # victim word this leader will never rewrite.
            return None
        victim = yield from ctx.read(lock.victim_ptr)
        if victim != COHORT_LOCAL:
            return "not-victim"
        return None

    why = yield from ctx.wait_local_cond(
        [lock.tail_r_ptr, lock.victim_ptr], check)
    if sp is not None:
        ctx.spans.end(sp, via=why)
    if ctx.tracer.enabled:
        ctx.trace("peterson.acquired", f"{lock.name} cohort=LOCAL via {why}")


def acquire_remote(ctx: "ThreadContext", lock: "ALock"):
    """AcquireGlobal for the remote-cohort leader.

    Sets ``victim = REMOTE`` with an ``rWrite``, then remote-spins:
    each wait iteration is an ``rRead`` of the local tail and, if that is
    still locked, an ``rRead`` of the victim.  This is real NIC traffic —
    the asymmetric reacquire cost the budget policy is tuned around.
    """
    if ctx.tracer.enabled:
        ctx.trace("peterson.enter", f"{lock.name} cohort=REMOTE")
    fl = ctx._flight
    if fl is not None:
        fl.note(ctx.actor, "lock.wait", lock.name, "peterson-remote")
    sp = (ctx.spans.start(ctx.actor, PETERSON_COMPETE, cohort="remote")
          if ctx.spans.enabled else None)
    yield from ctx.r_write(lock.victim_ptr, COHORT_REMOTE)
    spins = 0
    while True:
        tail_l = yield from ctx.r_read(lock.tail_l_ptr)
        if tail_l == 0:
            if sp is not None:
                ctx.spans.end(sp, via="local-unlocked", spins=spins)
            if ctx.tracer.enabled:
                ctx.trace("peterson.acquired",
                          f"{lock.name} cohort=REMOTE via local-unlocked "
                          f"after {spins} spins")
            return
        victim = yield from ctx.r_read(lock.victim_ptr)
        if victim != COHORT_REMOTE:
            if sp is not None:
                ctx.spans.end(sp, via="not-victim", spins=spins)
            if ctx.tracer.enabled:
                ctx.trace("peterson.acquired",
                          f"{lock.name} cohort=REMOTE via not-victim "
                          f"after {spins} spins")
            return
        spins += 1
