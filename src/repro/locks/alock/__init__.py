"""The ALock: asymmetric lock primitive (paper §5).

Composition (Algorithms 1–4):

* two budgeted MCS queue locks — one per cohort (local / remote), their
  tails embedded in the ALock record where they double as Peterson flags;
* a modified Peterson's algorithm between the two cohort leaders, with a
  ``victim`` word and a ``pReacquire`` operation that enforces the
  budget-based fairness policy.
"""

from repro.locks.alock.alock import ALock
from repro.locks.alock.descriptors import Descriptor, descriptor_pair

__all__ = ["ALock", "Descriptor", "descriptor_pair"]
