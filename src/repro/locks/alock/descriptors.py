"""MCS descriptors (paper Algorithm 1).

Each thread owns exactly **two** descriptors for its entire lifetime —
one used when it is in the local cohort of some ALock, one for the
remote cohort (Algorithm 1 allocates one ``LocalDescriptor`` and one
``RemoteDescriptor`` per thread).  One pair suffices because a thread
waits on or holds at most one lock at a time; the pool enforces that
invariant and raises :class:`ProtocolError` on violations instead of
corrupting a queue.

Descriptors live in the *owner's* node memory: the owner spins on
``budget`` with local reads while the predecessor — who may be anywhere —
writes it (remotely for the remote cohort).  That placement is what makes
"spin locally" possible for both cohorts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.common.errors import ProtocolError
from repro.locks.layout import DESCRIPTOR_LAYOUT
from repro.memory.pointer import RdmaPointer, ptr_addr

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster import ThreadContext

#: Sentinel budget meaning "enqueued, waiting for the lock to be passed".
WAITING = -1

OFF_BUDGET = DESCRIPTOR_LAYOUT.offset_of("budget")
OFF_NEXT = DESCRIPTOR_LAYOUT.offset_of("next")


class Descriptor:
    """One thread's descriptor for one cohort flavor."""

    __slots__ = ("ctx", "flavor", "ptr", "label", "in_use")

    def __init__(self, ctx: "ThreadContext", flavor: str):
        self.ctx = ctx
        self.flavor = flavor  # "local" | "remote"
        region = ctx.cluster.regions[ctx.node_id]
        self.ptr = region.alloc_ptr(DESCRIPTOR_LAYOUT.size)
        self.label = f"desc[{ctx.actor}:{flavor}]"
        addr = ptr_addr(self.ptr)
        region.label_word(addr + OFF_BUDGET, self.label + ".budget")
        region.label_word(addr + OFF_NEXT, self.label + ".next")
        self.in_use = False

    @property
    def budget_ptr(self) -> int:
        return self.ptr + OFF_BUDGET

    @property
    def next_ptr(self) -> int:
        return self.ptr + OFF_NEXT

    def begin(self):
        """Reset for a fresh enqueue (Algorithm 3 line 2): budget = -1,
        next = NULL.  Local writes — the descriptor is our own memory.
        Generator; drives the cost of the two stores."""
        if self.in_use:
            raise ProtocolError(
                f"{self.ctx.actor}: {self.flavor} descriptor reused while still "
                f"enqueued (a thread can wait on only one lock at a time)")
        self.in_use = True
        fl = self.ctx._flight
        if fl is not None:
            fl.note(self.ctx.actor, "desc.begin", self.label)
        yield from self.ctx.write(self.budget_ptr, WAITING)
        yield from self.ctx.write(self.next_ptr, 0)

    def end(self) -> None:
        # No flight note: a descriptor's retirement is implied by the
        # same label's next desc.begin (or the lock.released that
        # precedes it), and the per-acquisition note here was one of the
        # recorder's hottest call sites (see the <3% budget in
        # repro.obs.flight).
        self.in_use = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Descriptor {self.flavor} of {self.ctx.actor} at {RdmaPointer(self.ptr)}>"


def descriptor_pair(ctx: "ThreadContext") -> tuple[Descriptor, Descriptor]:
    """The thread's (local, remote) descriptor pair, allocated lazily on
    first use and cached on the context."""
    pair = getattr(ctx, "_alock_descriptors", None)
    if pair is None:
        pair = (Descriptor(ctx, "local"), Descriptor(ctx, "remote"))
        ctx._alock_descriptors = pair
    return pair


class DescriptorPool:
    """Per-(thread, flavor) pool enabling *nested* ALock acquisitions.

    The paper's Algorithm 1 gives each thread exactly one descriptor per
    cohort flavor, which caps a thread at one in-flight acquisition per
    flavor — enough for the lock-table benchmark, but not for
    applications that hold two locks at once (e.g. the KV store's
    two-bucket transfer).  A descriptor is just a 64-byte record, so the
    natural extension is a small pool: each nested acquisition takes the
    next free descriptor and returns it on release.

    ``capacity=1`` reproduces the paper's single-descriptor discipline
    exactly (reuse raises ProtocolError); ALock's ``allow_nesting``
    option switches to an unbounded pool.
    """

    __slots__ = ("ctx", "flavor", "capacity", "_free", "_allocated")

    def __init__(self, ctx: "ThreadContext", flavor: str, capacity: int = 0):
        self.ctx = ctx
        self.flavor = flavor
        self.capacity = capacity  # 0 = unbounded
        self._free: list[Descriptor] = []
        self._allocated = 0

    def acquire(self) -> Descriptor:
        """A free descriptor (allocating a new record when the pool is
        empty and under capacity)."""
        if self._free:
            return self._free.pop()
        if self.capacity and self._allocated >= self.capacity:
            raise ProtocolError(
                f"{self.ctx.actor}: all {self.capacity} {self.flavor} "
                f"descriptor(s) in use — nested acquisition beyond the "
                f"pool capacity")
        self._allocated += 1
        return Descriptor(self.ctx, self.flavor)

    def release(self, desc: Descriptor) -> None:
        self._free.append(desc)

    @property
    def allocated(self) -> int:
        return self._allocated


def descriptor_pools(ctx: "ThreadContext") -> tuple[DescriptorPool, DescriptorPool]:
    """The thread's (local, remote) descriptor pools for nesting-enabled
    ALocks; lazily created, shared across locks."""
    pools = getattr(ctx, "_alock_descriptor_pools", None)
    if pools is None:
        pools = (DescriptorPool(ctx, "local"), DescriptorPool(ctx, "remote"))
        ctx._alock_descriptor_pools = pools
    return pools
