"""The paper's competitor locks (§6).

Both baselines use RDMA verbs for **all** lock operations regardless of
locality — a local access goes through the node's own RNIC via loopback,
exactly how RDMA systems without ALock keep local/remote atomicity.

* :class:`RdmaSpinlock` — "simply repeats RDMA rCAS until it succeeds";
  remote spinning generates fabric + NIC traffic proportional to wait
  time.
* :class:`RdmaMcsLock` — "an RDMA-aware queue integrated into the
  original MCS lock algorithm"; threads spin on their own descriptor
  via loopback reads and pass the lock with one rWrite.
"""

from repro.locks.baselines.spinlock import RdmaSpinlock
from repro.locks.baselines.mcs import RdmaMcsLock

__all__ = ["RdmaSpinlock", "RdmaMcsLock"]
