"""RDMA-ported MCS queue lock baseline (the paper's second competitor).

The original MCS algorithm with the queue held in RDMA memory, and —
per §6 — **every** operation performed through RDMA verbs regardless of
locality: descriptor initialization, the tail swap (an rCAS retry loop:
IB verbs have no atomic swap), linking behind the predecessor, and the
wait itself, which polls the thread's *own* descriptor through loopback
reads.  "Spinning locally" here means spinning on own-node memory via
the local RNIC, which still occupies the NIC's pipelines and PCIe — the
reason this baseline trails ALock even though its queue discipline
matches.

Passing the lock costs one rWrite of the successor's ``locked`` flag;
release with no successor is one rCAS of the tail — identical op counts
to the ALock's remote cohort, which is why the two track each other in
medium-contention, low-locality workloads (Fig. 6 e/h/k).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.common.errors import ConfigError, ProtocolError
from repro.locks.base import (
    DistributedLock,
    observed_acquire,
    observed_release,
    register_lock_type,
)
from repro.locks.layout import MCS_DESCRIPTOR_LAYOUT, MCS_LAYOUT
from repro.obs import MCS_QUEUE_WAIT

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster import Cluster, ThreadContext

OFF_LOCKED = MCS_DESCRIPTOR_LAYOUT.offset_of("locked")
OFF_NEXT = MCS_DESCRIPTOR_LAYOUT.offset_of("next")


class _McsDescriptor:
    """Per-thread descriptor for the baseline (distinct from ALock's)."""

    def __init__(self, ctx: "ThreadContext"):
        self.ctx = ctx
        region = ctx.cluster.regions[ctx.node_id]
        self.ptr = region.alloc_ptr(MCS_DESCRIPTOR_LAYOUT.size)
        self.label = f"mcsdesc[{ctx.actor}]"
        from repro.memory.pointer import ptr_addr

        addr = ptr_addr(self.ptr)
        region.label_word(addr + OFF_LOCKED, self.label + ".locked")
        region.label_word(addr + OFF_NEXT, self.label + ".next")
        self.in_use = False

    @property
    def locked_ptr(self) -> int:
        return self.ptr + OFF_LOCKED

    @property
    def next_ptr(self) -> int:
        return self.ptr + OFF_NEXT


def _descriptor(ctx: "ThreadContext") -> _McsDescriptor:
    desc = getattr(ctx, "_mcs_descriptor", None)
    if desc is None:
        desc = _McsDescriptor(ctx)
        ctx._mcs_descriptor = desc
    return desc


class RdmaMcsLock(DistributedLock):
    """One MCS lock: a tail word on ``home_node``.

    Args:
        poll_interval_ns: extra delay between loopback polls of the spin
            flag; 0 (default) polls back-to-back, self-throttled by the
            loopback latency itself.
        bug: opt-in seeded defect for the schedule-exploration harness
            (see :data:`RdmaMcsLock.BUGS`); "" (default) is the correct
            algorithm.  Never set outside mutation tests.
    """

    kind = "mcs"

    #: Seeded schedule-dependent defect: ``lost_wakeup`` replaces the
    #: waiter's poll loop with check-then-park — the handoff write can
    #: land inside the poll's loopback round trip, after the target
    #: sampled the flag but before the waiter parks, and the waiter then
    #: sleeps on a word that will never be written again.
    BUGS = ("lost_wakeup",)

    def __init__(self, cluster: "Cluster", home_node: int, name: str = "",
                 poll_interval_ns: float = 0.0, bug: str = ""):
        super().__init__(cluster, home_node, name)
        if poll_interval_ns < 0:
            raise ConfigError("poll_interval_ns must be >= 0")
        if bug and bug not in self.BUGS:
            raise ConfigError(
                f"unknown seeded bug {bug!r}; known: {', '.join(self.BUGS)}")
        self.poll_interval_ns = poll_interval_ns
        self.bug = bug
        self.base_ptr = cluster.alloc_on(home_node, MCS_LAYOUT.size)
        self.tail_ptr = MCS_LAYOUT.addr_of(self.base_ptr, "tail")
        from repro.memory.pointer import ptr_addr

        cluster.regions[home_node].label_word(
            ptr_addr(self.tail_ptr), f"{self.name}.tail")
        self._sessions: dict[int, _McsDescriptor] = {}
        # statistics
        self.passes = 0
        self.spin_polls = 0

    def _poll(self, ctx: "ThreadContext", ptr: int, stop):
        """Loopback-poll ``ptr`` until ``stop(value)``; returns the value."""
        while True:
            value = yield from ctx.r_read(ptr)
            self.spin_polls += 1
            if stop(value):
                return value
            if self.poll_interval_ns > 0:
                yield ctx.env.timeout(self.poll_interval_ns)

    def _buggy_wait(self, ctx: "ThreadContext", desc: _McsDescriptor):
        """Seeded ``lost_wakeup`` defect: poll the flag, then *park* on a
        memory watcher armed only after the poll returned.  The handoff
        rWrite can land during the poll's round trip — sampled too early
        to be seen, landed too early to trip the watcher — and the waiter
        sleeps forever (contrast ``wait_local``'s watcher-before-check
        ordering, which makes the correct path lost-wakeup free)."""
        from repro.memory.pointer import ptr_addr

        region = ctx.cluster.regions[ctx.node_id]
        while True:
            value = yield from ctx.r_read(desc.locked_ptr)
            self.spin_polls += 1
            if value == 0:
                return
            if self.poll_interval_ns > 0:
                # The throttle the correct path applies *between* polls
                # here sits between the check and the park, stretching
                # the unprotected window by a full backoff period.
                yield ctx.env.timeout(self.poll_interval_ns)
            # simlint: ignore[deep-blocking] -- the raw park IS the seeded bug
            yield region.watch(ptr_addr(desc.locked_ptr))  # armed too late

    @observed_acquire
    def lock(self, ctx: "ThreadContext"):
        if ctx.gid in self._sessions:
            raise ProtocolError(f"{ctx.actor} re-locking {self.name}")
        desc = _descriptor(ctx)
        if desc.in_use:
            raise ProtocolError(
                f"{ctx.actor}: MCS descriptor reused while still enqueued")
        desc.in_use = True
        try:
            # Descriptor init — via RDMA (loopback), per the baseline's rules.
            yield from ctx.r_write(desc.locked_ptr, 1)
            yield from ctx.r_write(desc.next_ptr, 0)
            # Swap onto the tail (rCAS retry loop).
            expected = 0
            while True:
                old = yield from ctx.r_cas(self.tail_ptr, expected, desc.ptr)
                if old == expected:
                    break
                expected = old
            prev = expected
            if prev != 0:
                yield from ctx.r_write(prev + OFF_NEXT, desc.ptr)
                fl = ctx._flight
                if fl is not None:
                    fl.note(ctx.actor, "lock.wait", self.name, "locked")
                sp = (ctx.spans.start(ctx.actor, MCS_QUEUE_WAIT,
                                      loopback_poll=True)
                      if ctx.spans.enabled else None)
                if self.bug == "lost_wakeup":
                    yield from self._buggy_wait(ctx, desc)
                else:
                    yield from self._poll(ctx, desc.locked_ptr,
                                          lambda v: v == 0)
                if sp is not None:
                    ctx.spans.end(sp)
                self.passes += 1
        except BaseException:
            # Failed acquisition (a VerbTimeout from the fault layer, or an
            # interrupt mid-enqueue): the descriptor must come back, or this
            # thread can never enqueue again.
            desc.in_use = False
            raise
        yield from ctx.fence()
        self._sessions[ctx.gid] = desc
        self._note_acquired(ctx)
        if ctx.tracer.enabled:
            ctx.trace("cs.enter", self.name)

    @observed_release
    def unlock(self, ctx: "ThreadContext"):
        desc = self._sessions.pop(ctx.gid, None)
        if desc is None:
            raise ProtocolError(f"{ctx.actor} unlocking {self.name} without holding it")
        yield from ctx.fence()
        self._note_released(ctx)
        if ctx.tracer.enabled:
            ctx.trace("cs.exit", self.name)
        old = yield from ctx.r_cas(self.tail_ptr, desc.ptr, 0)
        if old != desc.ptr:
            fl = ctx._flight
            if fl is not None:
                fl.note(ctx.actor, "lock.wait", self.name, "next")
            nxt = yield from self._poll(ctx, desc.next_ptr, lambda v: v != 0)
            yield from ctx.r_write(nxt + OFF_LOCKED, 0)
        desc.in_use = False


def _make_mcs(cluster, home_node, **options):
    return RdmaMcsLock(cluster, home_node, **options)


register_lock_type("mcs", _make_mcs)
