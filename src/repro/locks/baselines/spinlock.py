"""RDMA CAS spinlock baseline.

The simplest RDMA lock and the first competitor in §6: acquire by
repeating ``rCAS(word, 0, my_gid)`` until it succeeds, release with one
``rWrite(word, 0)``.  Every attempt is a full one-sided round trip —
through loopback when the lock is local — so waiting threads *remote
spin*, flooding the target NIC.  Under contention this is the lock that
collapses in Figs. 1, 5 and 6.

``backoff_ns`` adds truncated binary exponential backoff between failed
attempts (off by default, matching the paper's plain spinlock; the
ablation benchmark turns it on to show backoff alone does not close the
gap to ALock).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.common.errors import ConfigError, ProtocolError
from repro.locks.base import (
    DistributedLock,
    observed_acquire,
    observed_release,
    register_lock_type,
)
from repro.locks.layout import SPINLOCK_LAYOUT

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster import Cluster, ThreadContext


class RdmaSpinlock(DistributedLock):
    """One spinlock: a single word on ``home_node`` (0 = free, else the
    holder's gid)."""

    kind = "spinlock"

    def __init__(self, cluster: "Cluster", home_node: int, name: str = "",
                 backoff_ns: float = 0.0, max_backoff_ns: float = 50_000.0):
        super().__init__(cluster, home_node, name)
        if backoff_ns < 0 or max_backoff_ns < 0:
            raise ConfigError("backoff parameters must be >= 0")
        self.backoff_ns = backoff_ns
        self.max_backoff_ns = max_backoff_ns
        self.base_ptr = cluster.alloc_on(home_node, SPINLOCK_LAYOUT.size)
        self.word_ptr = SPINLOCK_LAYOUT.addr_of(self.base_ptr, "word")
        from repro.memory.pointer import ptr_addr

        cluster.regions[home_node].label_word(
            ptr_addr(self.word_ptr), f"{self.name}.word")
        # statistics
        self.cas_attempts = 0

    @observed_acquire
    def lock(self, ctx: "ThreadContext"):
        attempts = 0
        while True:
            old = yield from ctx.r_cas(self.word_ptr, 0, ctx.gid)
            self.cas_attempts += 1
            attempts += 1
            if old == 0:
                break
            if old == ctx.gid:
                raise ProtocolError(f"{ctx.actor} re-locking {self.name}")
            if self.backoff_ns > 0:
                delay = min(self.backoff_ns * (1 << min(attempts, 16)),
                            self.max_backoff_ns)
                yield ctx.env.timeout(delay)
        yield from ctx.fence()
        self._note_acquired(ctx)
        if ctx.tracer.enabled:
            ctx.trace("cs.enter", f"{self.name} after {attempts} rCAS")

    @observed_release
    def unlock(self, ctx: "ThreadContext"):
        if self.holder_gid != ctx.gid:
            raise ProtocolError(f"{ctx.actor} unlocking {self.name} without holding it")
        yield from ctx.fence()
        # Oracle updated before the release op is issued (see base.py).
        self._note_released(ctx)
        if ctx.tracer.enabled:
            ctx.trace("cs.exit", self.name)
        yield from ctx.r_write(self.word_ptr, 0)


def _make_spinlock(cluster, home_node, **options):
    return RdmaSpinlock(cluster, home_node, **options)


register_lock_type("spinlock", _make_spinlock)
