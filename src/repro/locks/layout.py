"""Memory layouts of all lock records (paper Fig. 3).

Every record is padded to one 64-byte cache line: the paper pads all
metadata "to prevent false cache-line sharing".  The ALock record embeds
the Peterson state — the two cohort tails double as the Peterson flags
(a non-NULL tail ⇔ that cohort is interested or holds the lock), plus
the ``victim`` word.

Crucially, no word of the ALock is ever the target of *both* a local RMW
and a remote RMW:

=============  =====================  ======================
word           local cohort uses       remote cohort uses
=============  =====================  ======================
``tail_l``     ``CAS`` (swap)          ``rRead`` (Peterson check)
``tail_r``     ``Read`` (Peterson)     ``rCAS`` (swap)
``victim``     ``Read``/``Write``      ``rRead``/``rWrite``
=============  =====================  ======================

Only 'Yes' cells of Table 1 are exercised — the design insight that
makes ALock correct without loopback.
"""

from __future__ import annotations

from repro.memory.layout import StructLayout, WordField

#: Victim-word values: which cohort yields.  (Any two distinct values
#: work; the initial zero-filled word means "LOCAL is victim", which is
#: harmless while both tails are NULL.)
COHORT_LOCAL = 0
COHORT_REMOTE = 1

#: The ALock record (Fig. 3): remote tail, local tail, victim, padding.
ALOCK_LAYOUT = StructLayout("ALock", 64, (
    WordField("tail_r", 0),
    WordField("tail_l", 8),
    WordField("victim", 16),
))

#: MCS queue descriptor (Algorithm 1): budget (signed; -1 = waiting) and
#: the next pointer forming the queue.  One remote + one local descriptor
#: per thread, allocated in the thread's own node's RDMA memory so the
#: owner spins on it with local reads while the predecessor writes it
#: (possibly) remotely.
DESCRIPTOR_LAYOUT = StructLayout("Descriptor", 64, (
    WordField("budget", 0, signed=True),
    WordField("next", 8),
))

#: Baseline spinlock: a single word (0 = free, owner gid otherwise).
SPINLOCK_LAYOUT = StructLayout("Spinlock", 64, (
    WordField("word", 0),
))

#: Baseline RDMA-MCS lock: just the queue tail.
MCS_LAYOUT = StructLayout("McsLock", 64, (
    WordField("tail", 0),
))

#: Baseline MCS descriptor: spin flag (1 = wait, 0 = lock passed) + next.
MCS_DESCRIPTOR_LAYOUT = StructLayout("McsDescriptor", 64, (
    WordField("locked", 0),
    WordField("next", 8),
))
