"""Distributed lock primitives.

* :class:`~repro.locks.alock.ALock` — the paper's contribution: the
  hierarchical local/remote-cohort lock (budgeted MCS queues embedded in
  a modified Peterson's algorithm).
* :class:`~repro.locks.baselines.RdmaSpinlock` — the rCAS-retry spinlock
  the paper compares against (all ops via RDMA, loopback for local
  memory).
* :class:`~repro.locks.baselines.RdmaMcsLock` — the RDMA-ported MCS
  queue lock baseline.

All locks share the :class:`~repro.locks.base.DistributedLock` interface:
``lock(ctx)``/``unlock(ctx)`` generators driven inside simulation
processes.  ``make_lock`` builds any of them by name — the experiment
harness's extension point.
"""

from repro.locks.base import DistributedLock, LOCK_TYPES, make_lock, register_lock_type
from repro.locks.layout import (
    ALOCK_LAYOUT,
    COHORT_LOCAL,
    COHORT_REMOTE,
    DESCRIPTOR_LAYOUT,
    MCS_LAYOUT,
    SPINLOCK_LAYOUT,
)
from repro.locks.alock import ALock
from repro.locks.baselines import RdmaMcsLock, RdmaSpinlock
from repro.locks.extensions import (
    BakeryLock,
    FilterLock,
    MixedAtomicLock,
    RpcLock,
)

__all__ = [
    "DistributedLock",
    "make_lock",
    "register_lock_type",
    "LOCK_TYPES",
    "ALock",
    "RdmaSpinlock",
    "RdmaMcsLock",
    "FilterLock",
    "BakeryLock",
    "RpcLock",
    "MixedAtomicLock",
    "ALOCK_LAYOUT",
    "DESCRIPTOR_LAYOUT",
    "SPINLOCK_LAYOUT",
    "MCS_LAYOUT",
    "COHORT_LOCAL",
    "COHORT_REMOTE",
]
