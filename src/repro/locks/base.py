"""Common lock interface, holder bookkeeping, and the lock-type registry.

Locks are *handles* over a 64-byte record in some node's RDMA memory.
``lock(ctx)``/``unlock(ctx)`` are generators driven with ``yield from``
inside a simulation process.  The base class tracks the current holder
to catch protocol misuse (double lock, unlock by a non-holder) — pure
bookkeeping outside the simulated timeline, mirroring what a debug build
of the paper's artifact would assert.
"""

from __future__ import annotations

import functools
from abc import ABC, abstractmethod
from typing import Callable, TYPE_CHECKING

from repro.common.errors import ConfigError, ProtocolError
from repro.obs import LOCK_ACQUIRE, LOCK_RELEASE

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster import Cluster, ThreadContext


def _traced(span_name: str):
    """Decorator factory wrapping a ``lock``/``unlock`` generator method
    in a typed span + phase histogram sample.

    Opt-in per implementation (the shipped locks use it); ``lock`` /
    ``unlock`` remain the abstract override points, so user locks that
    implement them directly — like the tutorial's TAS lock — stay
    first-class, just unobserved.  With observability off the wrapper
    returns the undecorated generator: one boolean check, no allocation,
    no extra frame on the drive path.
    """

    def deco(fn):
        @functools.wraps(fn)
        def wrapper(self, ctx, *args, **kwargs):
            inner = fn(self, ctx, *args, **kwargs)
            if not (self._spans.enabled or self._obs_h is not None):
                return inner
            return self._observed_op(ctx, span_name, inner)
        return wrapper
    return deco


#: wrap a lock implementation's ``lock`` in a ``lock.acquire`` span.
observed_acquire = _traced(LOCK_ACQUIRE)
#: wrap a lock implementation's ``unlock`` in a ``lock.release`` span.
observed_release = _traced(LOCK_RELEASE)


class DistributedLock(ABC):
    """A mutual-exclusion lock living on ``home_node`` of ``cluster``."""

    #: short machine name used by the experiment harness ("alock", ...).
    kind: str = "abstract"

    def __init__(self, cluster: "Cluster", home_node: int, name: str = ""):
        if not 0 <= home_node < cluster.n_nodes:
            raise ConfigError(f"home node {home_node} outside cluster")
        self.cluster = cluster
        self.home_node = home_node
        self.name = name or f"{self.kind}@n{home_node}"
        self._holder_gid: int = 0
        self._holder_since: float = 0.0
        self._flight = cluster.flight  # always-on flight ring (or None)
        # observability handles (see observed_acquire/observed_release)
        obs = cluster.obs
        self._spans = obs.spans
        if obs.metrics.enabled:
            self._obs_h = {
                LOCK_ACQUIRE: obs.metrics.histogram(
                    "lock.phase_ns", kind=self.kind, phase="acquire"),
                LOCK_RELEASE: obs.metrics.histogram(
                    "lock.phase_ns", kind=self.kind, phase="release"),
            }
        else:
            self._obs_h = None
        # statistics
        self.acquisitions = 0

    def _observed_op(self, ctx: "ThreadContext", span_name: str, inner):
        """Drive ``inner`` under a span; record its duration.  Only
        entered when some recorder is on (see :func:`_traced`)."""
        rec = self._spans
        sp = (rec.start(ctx.actor, span_name, lock=self.name,
                        kind=self.kind, home=self.home_node)
              if rec.enabled else None)
        t0 = ctx.env.now
        try:
            result = yield from inner
        except BaseException:
            if sp is not None:
                rec.end(sp, outcome="error")
            raise
        if sp is not None:
            rec.end(sp, outcome="ok")
        if self._obs_h is not None:
            self._obs_h[span_name].observe(ctx.env.now - t0)
        return result

    # -- protocol bookkeeping (not part of the simulated algorithm) -------
    def _note_acquired(self, ctx: "ThreadContext") -> None:
        if self._holder_gid != 0:
            raise ProtocolError(
                f"{self.name}: {ctx.actor} acquired while gid {self._holder_gid} "
                f"still marked as holder — mutual exclusion broken")
        self._holder_gid = ctx.gid
        self._holder_since = self.cluster.env.now
        self.acquisitions += 1
        fl = self._flight
        if fl is not None:
            fl.note(ctx.actor, "lock.acquired", self.name)

    def _note_released(self, ctx: "ThreadContext") -> None:
        if self._holder_gid != ctx.gid:
            raise ProtocolError(
                f"{self.name}: unlock by {ctx.actor} (gid {ctx.gid}) but holder "
                f"is gid {self._holder_gid}")
        self._holder_gid = 0
        fl = self._flight
        if fl is not None:
            fl.note(ctx.actor, "lock.released", self.name)

    @property
    def holder_gid(self) -> int:
        """gid of the current holder (0 = free) — oracle state for tests."""
        return self._holder_gid

    @property
    def holder_since(self) -> float:
        """Sim time the current holder acquired at (oracle state; only
        meaningful while ``holder_gid != 0``).  The lock table's lease
        monitor uses it to tell a stalled holder from queue churn."""
        return self._holder_since

    # -- the lock protocol ----------------------------------------------
    @abstractmethod
    def lock(self, ctx: "ThreadContext"):
        """Acquire; generator, returns when the critical section may start."""

    @abstractmethod
    def unlock(self, ctx: "ThreadContext"):
        """Release; generator.  Caller must be the holder."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"


#: name -> factory(cluster, home_node, **options) registry.
LOCK_TYPES: dict[str, Callable[..., DistributedLock]] = {}


def register_lock_type(kind: str, factory: Callable[..., DistributedLock]) -> None:
    """Register a lock implementation under ``kind`` for :func:`make_lock`.
    Benchmarks and the lock table construct locks by name so new
    primitives drop in without touching the harness."""
    if kind in LOCK_TYPES:
        raise ConfigError(f"lock type {kind!r} already registered")
    LOCK_TYPES[kind] = factory


def make_lock(kind: str, cluster: "Cluster", home_node: int,
              **options) -> DistributedLock:
    """Construct a lock of the registered ``kind``."""
    try:
        factory = LOCK_TYPES[kind]
    except KeyError:
        raise ConfigError(
            f"unknown lock type {kind!r}; known: {sorted(LOCK_TYPES)}") from None
    return factory(cluster, home_node, **options)
