"""One-sided verbs over the simulated fabric.

:class:`RdmaNetwork` ties NICs, memory regions and the fabric together
and exposes the verb set from the paper's system model: ``rRead``,
``rWrite``, ``rCAS`` (plus ``rFAA``, which InfiniBand also offers and
the lock-table application uses for counters).

Every verb is a simulation-process fragment (``yield from network.r_cas(...)``)
that returns the op's result to the caller after the full round trip.
Issuing a verb against the caller's *own* node takes the **loopback**
path: same NIC, both pipelines, no fabric — the mechanism the paper's
competitors rely on for local accesses and the source of the Fig. 1
saturation.

A remote RMW's read and write-back are separated by the NIC's
``atomic_window_ns`` while the target RX pipeline is held; the shared
:class:`~repro.memory.races.RaceAuditor` is told about the window so
Table-1 violations by concurrent local code are detected, and a local
write landing inside the window is genuinely lost (overwritten by the
RMW's write-back).

Fault injection (:mod:`repro.faults`): when the network is built with a
:class:`~repro.faults.FaultInjector`, each verb passes through a
requester-side retransmission harness modeled on the RC transport.  A
lost transmission charges the send side and then hangs in flight; a
watchdog timer fires after the retry timeout and *interrupts* the
in-flight attempt (:meth:`~repro.sim.core.Process.interrupt`) — cleanly,
because NIC resources cancel abandoned admissions — then the verb is
retransmitted with exponential backoff.  Losses happen on the *request*
path only, before the target executes the op, so retries are
exactly-once at the application layer (what PSN dedup guarantees on real
hardware) and a retried rCAS can never double-apply.  When the retry
budget is exhausted a typed :class:`~repro.common.errors.VerbTimeout`
surfaces to the caller.  Without an injector the verbs run the original
fault-free code path unchanged.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.common.errors import MemoryError_, VerbTimeout
from repro.faults.injector import FaultInjector
from repro.memory.races import RaceAuditor
from repro.memory.region import MemoryRegion, from_signed, to_signed
from repro.memory.pointer import ptr_addr, ptr_node
from repro.obs import FAULT_RETRY, VERB_RTT, Observability
from repro.rdma.config import RdmaConfig
from repro.rdma.nic import Rnic
from repro.rdma.qp import qp_id
from repro.sim.core import Environment, Timeout

_VERBS = ("rRead", "rWrite", "rCAS", "rFAA")


class RdmaNetwork:
    """The cluster's RDMA plane: one NIC per node + the fabric."""

    def __init__(self, env: Environment, config: RdmaConfig,
                 regions: list[MemoryRegion],
                 auditor: Optional[RaceAuditor] = None,
                 jitter_rng: Optional[np.random.Generator] = None,
                 injector: Optional[FaultInjector] = None,
                 obs: Optional[Observability] = None,
                 flight=None):
        self.env = env
        self.config = config
        self.regions = regions
        self.auditor = auditor
        self.nics = [Rnic(env, i, config.nic) for i in range(len(regions))]
        self._jitter_rng = jitter_rng
        self.injector = injector
        # flight recorder: consulted only on the cold retry/timeout path
        # (per-verb issue notes live in ThreadContext, where the actor
        # string is precomputed)
        self._flight = flight
        # observability: span recorder handle + pre-built RTT histograms
        # (None when disabled — the hot path checks one attribute).
        self._spans = obs.spans if obs is not None else None
        if obs is not None and obs.metrics.enabled:
            self._h_rtt = {
                (v, lb): obs.metrics.histogram(
                    "verb.rtt_ns", verb=v,
                    path="loopback" if lb else "fabric")
                for v in _VERBS for lb in (False, True)
            }
        else:
            self._h_rtt = None
        # computed once: with everything off the verbs skip the
        # _observed wrapper frame and run the exact pre-obs code path
        self._obs_on = ((self._spans is not None and self._spans.enabled)
                        or self._h_rtt is not None)
        # Per-verb latency parameters cached off the (immutable) config:
        # every verb consults the fabric latency twice per round trip, and
        # the config-object attribute chain is hot enough to matter.
        self._one_way_latency_ns = config.fabric.one_way_latency_ns
        self._jitter_ns = config.fabric.jitter_ns
        self._n_nodes = len(regions)
        # statistics
        self.verb_counts = {"rRead": 0, "rWrite": 0, "rCAS": 0, "rFAA": 0}
        self.loopback_verbs = 0

    # -- internals ---------------------------------------------------------
    def _route(self, src_node: int, ptr: int) -> tuple[int, int, MemoryRegion, bool]:
        dst = ptr_node(ptr)
        addr = ptr_addr(ptr)
        if not 0 <= dst < self._n_nodes:
            raise MemoryError_(f"pointer targets unknown node {dst}")
        return dst, addr, self.regions[dst], dst == src_node

    def _fabric_delay(self) -> float:
        d = self._one_way_latency_ns
        if self._jitter_ns > 0 and self._jitter_rng is not None:
            d += float(self._jitter_rng.uniform(0.0, self._jitter_ns))
        return d

    def _transit(self, src_nic: Rnic, loopback: bool):
        """Source-to-target transit after the send side."""
        if loopback:
            yield from src_nic.loopback_turnaround()
        else:
            yield Timeout(self.env, self._fabric_delay())

    def _return_path(self, src_nic: Rnic, loopback: bool):
        """ACK/response back to the requester + completion DMA."""
        if not loopback:
            yield Timeout(self.env, self._fabric_delay())
        yield from src_nic.pcie_crossing()

    # -- fault/retry harness ----------------------------------------------
    def _lost_transmission(self, qp: tuple, src_nic: Rnic, loopback: bool):
        """One transmission whose request packet is dropped: the send
        side is charged for real, then the op vanishes in flight.  The
        watchdog in :meth:`_deliver` interrupts this process; the hang
        event is never triggered."""
        yield from src_nic.send_side(qp)
        yield from self._transit(src_nic, loopback)
        yield self.env.event()  # the packet is gone; nothing wakes us

    def _deliver(self, verb: str, src_node: int, dst: int, qp: tuple,
                 src_nic: Rnic, loopback: bool, attempt,
                 actor: Optional[str] = None):
        """Run one verb, retransmitting through the fault layer.

        ``attempt`` is a zero-argument generator function performing the
        full fault-free round trip; it is invoked at most once (losses
        hang *instead of* executing, mirroring request-path drops).
        ``actor`` is non-None only when span recording is on; each
        retransmission wait then becomes a ``fault.retry`` child span.
        """
        inj = self.injector
        if inj is None:
            return (yield from attempt())
        plan = inj.plan
        timeout_ns = plan.retry_timeout_ns
        for transmission in range(plan.retry_limit):
            fault = inj.decide_verb(verb, src_node, dst, self.env.now)
            if fault.delay_ns > 0.0:
                yield self.env.timeout(fault.delay_ns)  # latency spike
            if not fault.dropped:
                return (yield from attempt())
            # Dropped: the doomed transmission still occupies real NIC
            # resources; the requester times out and kills it mid-flight.
            retry_sp = (self._spans.start(actor, FAULT_RETRY, verb=verb,
                                          transmission=transmission)
                        if actor is not None else None)
            ghost = self.env.process(
                self._lost_transmission(qp, src_nic, loopback),
                name=f"{verb}-lost-tx")
            yield self.env.timeout(timeout_ns)
            ghost.interrupt("verb-timeout")
            inj.note_retry(verb)
            if retry_sp is not None:
                self._spans.end(retry_sp, timeout_ns=timeout_ns)
            timeout_ns *= plan.retry_backoff
        inj.note_verb_timeout(verb)
        fl = self._flight
        if fl is not None:
            fl.note(f"n{src_node}", "verb.timeout", verb, dst)
        raise VerbTimeout(
            f"{verb} to node {dst} lost {plan.retry_limit} transmissions "
            f"(retry budget exhausted)",
            verb=verb, target_node=dst, attempts=plan.retry_limit)

    def _observed(self, verb: str, src_node: int, src_thread: int, dst: int,
                  qp: tuple, src_nic: Rnic, loopback: bool, attempt):
        """Wrap one verb round trip in a ``verb.rtt`` span and RTT
        histogram sample.  With observability off this adds two attribute
        reads and no allocation."""
        spans = self._spans
        actor = None
        sp = None
        if spans is not None and spans.enabled:
            actor = f"t{src_thread}@n{src_node}"
            sp = spans.start(actor, VERB_RTT, verb=verb, dst=dst,
                             loopback=loopback)
        h = self._h_rtt
        t0 = self.env.now if h is not None else 0.0
        try:
            result = yield from self._deliver(verb, src_node, dst, qp,
                                              src_nic, loopback, attempt,
                                              actor)
        except VerbTimeout:
            if sp is not None:
                spans.end(sp, outcome="timeout")
            raise
        if sp is not None:
            spans.end(sp, outcome="ok")
        if h is not None:
            h[(verb, loopback)].observe(self.env.now - t0)
        return result

    # -- verbs -----------------------------------------------------------
    def r_read(self, src_node: int, src_thread: int, ptr: int,
               *, signed: bool = False):
        """One-sided read of the 8-byte word at ``ptr``; returns its value."""
        self.verb_counts["rRead"] += 1
        dst, addr, region, loopback = self._route(src_node, ptr)
        if loopback:
            self.loopback_verbs += 1
        qp = qp_id(src_node, src_thread, dst)
        src_nic, dst_nic = self.nics[src_node], self.nics[dst]

        def attempt():
            yield from src_nic.send_side(qp)
            yield from self._transit(src_nic, loopback)
            value = yield from dst_nic.receive_side(
                qp, execute=lambda: region.remote_read(addr))
            yield from self._return_path(src_nic, loopback)
            return value

        if self._obs_on:
            value = yield from self._observed("rRead", src_node, src_thread,
                                              dst, qp, src_nic, loopback,
                                              attempt)
        elif self.injector is None:
            # No fault layer: _deliver would only delegate — skip its frame.
            value = yield from attempt()
        else:
            value = yield from self._deliver("rRead", src_node, dst, qp,
                                             src_nic, loopback, attempt)
        return to_signed(value) if signed else value

    def r_write(self, src_node: int, src_thread: int, ptr: int, value: int):
        """One-sided write of ``value`` to the word at ``ptr``."""
        self.verb_counts["rWrite"] += 1
        dst, addr, region, loopback = self._route(src_node, ptr)
        if loopback:
            self.loopback_verbs += 1
        qp = qp_id(src_node, src_thread, dst)
        src_nic, dst_nic = self.nics[src_node], self.nics[dst]

        def attempt():
            yield from src_nic.send_side(qp)
            yield from self._transit(src_nic, loopback)
            yield from dst_nic.receive_side(
                qp, execute=lambda: region.remote_write(addr, value))
            yield from self._return_path(src_nic, loopback)

        if self._obs_on:
            yield from self._observed("rWrite", src_node, src_thread, dst,
                                      qp, src_nic, loopback, attempt)
        elif self.injector is None:
            yield from attempt()
        else:
            yield from self._deliver("rWrite", src_node, dst, qp, src_nic,
                                     loopback, attempt)

    def _rmw(self, verb: str, src_node: int, src_thread: int, ptr: int,
             apply_fn, actor: str):
        """Common path for rCAS/rFAA: two-phase execute at the target with
        the Table-1 window registered on the auditor."""
        self.verb_counts[verb] += 1
        dst, addr, region, loopback = self._route(src_node, ptr)
        if loopback:
            self.loopback_verbs += 1
        qp = qp_id(src_node, src_thread, dst)
        src_nic, dst_nic = self.nics[src_node], self.nics[dst]
        env = self.env
        auditor = self.auditor
        state: dict = {}

        def execute(phase: str):
            if phase == "read":
                old = region.remote_rmw_read(addr)
                state["old"] = old
                state["new"] = apply_fn(old)
                if auditor is not None:
                    state["win"] = auditor.remote_rmw_begin(
                        dst, addr, verb, actor, env.now,
                        env.now + dst_nic.config.atomic_window_ns)
                return old
            # commit phase
            if state["new"] is not None:
                region.remote_rmw_commit(addr, state["new"])
            if auditor is not None:
                auditor.remote_rmw_end(dst, state["win"])
            return state["old"]

        def attempt():
            yield from src_nic.send_side(qp)
            yield from self._transit(src_nic, loopback)
            old = yield from dst_nic.receive_side(qp, atomic=True,
                                                  execute=execute)
            yield from self._return_path(src_nic, loopback)
            return old

        if self._obs_on:
            old = yield from self._observed(verb, src_node, src_thread, dst,
                                            qp, src_nic, loopback, attempt)
        elif self.injector is None:
            old = yield from attempt()
        else:
            old = yield from self._deliver(verb, src_node, dst, qp, src_nic,
                                           loopback, attempt)
        return old

    def r_cas(self, src_node: int, src_thread: int, ptr: int,
              expected: int, desired: int, *, signed: bool = False,
              actor: str = "?"):
        """One-sided compare-and-swap; returns the previous value (the
        swap happened iff the return equals ``expected``)."""
        exp_raw = from_signed(expected)

        def apply_fn(old: int):
            return from_signed(desired) if old == exp_raw else None

        old = yield from self._rmw("rCAS", src_node, src_thread, ptr,
                                   apply_fn, actor)
        return to_signed(old) if signed else old

    def r_faa(self, src_node: int, src_thread: int, ptr: int, delta: int,
              *, signed: bool = False, actor: str = "?"):
        """One-sided fetch-and-add; returns the previous value."""
        def apply_fn(old: int):
            return from_signed(to_signed(old) + delta)

        old = yield from self._rmw("rFAA", src_node, src_thread, ptr,
                                   apply_fn, actor)
        return to_signed(old) if signed else old

    # -- reporting -----------------------------------------------------
    def stats(self) -> dict:
        out = {
            "verbs": dict(self.verb_counts),
            "loopback_verbs": self.loopback_verbs,
            "nics": [nic.stats() for nic in self.nics],
        }
        if self.injector is not None:
            out["faults"] = self.injector.stats()
        return out
