"""Cost-model configuration for the simulated RDMA cluster.

Defaults are calibrated to the hardware the paper used (Intel Xeon
E5-2450, Mellanox ConnectX-3) from published measurements:

* local atomic ops on a Xeon of that era: ~50–150 ns (Kalia et al.,
  "Design Guidelines for High Performance RDMA Systems", ATC'16 — the
  paper's [16]);
* one-sided RDMA verb round trip on CX-3: ~1.5–3 µs unloaded, so remote
  ≈ 20× local — the *operation asymmetry* the ALock exploits;
* RNIC message rates of a few Mops/s → per-op pipeline service of
  ~100–150 ns;
* QP context is 256 B and the on-chip cache is small; message rate
  declines past ~450 live connections (StaR, ICNP'21 — the paper's [31]).

Only *ratios* matter for reproducing the paper's shapes; the absolute
values put latency plots in a realistic nanosecond range.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class NicConfig:
    """One RNIC's service parameters.

    Attributes:
        tx_service_ns: TX pipeline occupancy per work request.
        rx_service_ns: RX pipeline occupancy per inbound op (before
            congestion inflation).
        atomic_window_ns: extra RX occupancy for a remote RMW — the
            read→execute→write-back window at the target.  This is also
            the Table-1 non-atomicity window.
        pcie_crossing_ns: one PCIe transaction (doorbell, DMA, completion).
        pcie_lanes: concurrent PCIe transactions (bus parallelism).
        rx_congestion_threshold: RX backlog (queued ops) beyond which the
            RX buffer starts accumulating and service inflates.
        rx_congestion_factor: fractional service-time increase per queued
            op beyond the threshold (models PCIe backpressure draining
            the RX buffer slower than line rate).
        rx_congestion_max_factor: cap on the inflation multiplier — the
            drain rate degrades but never approaches zero, so a congested
            NIC stays a stable (if slow) server instead of death-spiraling.
        qpc_cache_entries: QP contexts held on-chip before thrashing.
        qpc_miss_penalty_ns: context reload from host memory on miss.
        loopback_turnaround_ns: internal TX→RX turnaround when a node
            targets its own memory through the NIC (no fabric hop).
    """

    tx_service_ns: float = 110.0
    rx_service_ns: float = 130.0
    atomic_window_ns: float = 180.0
    pcie_crossing_ns: float = 70.0
    pcie_lanes: int = 2
    rx_congestion_threshold: int = 4
    rx_congestion_factor: float = 0.50
    rx_congestion_max_factor: float = 4.0
    qpc_cache_entries: int = 256
    qpc_miss_penalty_ns: float = 450.0
    loopback_turnaround_ns: float = 1100.0

    def __post_init__(self) -> None:
        for name in ("tx_service_ns", "rx_service_ns", "atomic_window_ns",
                     "pcie_crossing_ns", "qpc_miss_penalty_ns",
                     "loopback_turnaround_ns"):
            if getattr(self, name) < 0:
                raise ConfigError(f"NicConfig.{name} must be >= 0")
        if self.pcie_lanes < 1:
            raise ConfigError("NicConfig.pcie_lanes must be >= 1")
        if self.qpc_cache_entries < 1:
            raise ConfigError("NicConfig.qpc_cache_entries must be >= 1")
        if self.rx_congestion_factor < 0 or self.rx_congestion_threshold < 0:
            raise ConfigError("congestion parameters must be >= 0")
        if self.rx_congestion_max_factor < 1.0:
            raise ConfigError("rx_congestion_max_factor must be >= 1")


@dataclass(frozen=True)
class FabricConfig:
    """Inter-node network parameters.

    Attributes:
        one_way_latency_ns: propagation + switching for one direction
            (CX-3 era InfiniBand: ~0.7–1 µs including switch).
        jitter_ns: deterministic-seeded uniform jitter added per hop;
            0 disables.
    """

    one_way_latency_ns: float = 850.0
    jitter_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.one_way_latency_ns < 0 or self.jitter_ns < 0:
            raise ConfigError("fabric latencies must be >= 0")


@dataclass(frozen=True)
class CostModel:
    """CPU-side costs for local (shared-memory) operations.

    The paper's central asymmetry: these are ~20× cheaper than verbs.
    ``fence_ns`` is the atomic_thread_fence the ALock issues after
    locking and before unlocking (§5.2).
    """

    local_read_ns: float = 55.0
    local_write_ns: float = 60.0
    local_cas_ns: float = 95.0
    fence_ns: float = 25.0
    #: cost of one spin-loop re-check after a wakeup (scheduler + load).
    spin_recheck_ns: float = 40.0

    def __post_init__(self) -> None:
        for name in ("local_read_ns", "local_write_ns", "local_cas_ns",
                     "fence_ns", "spin_recheck_ns"):
            if getattr(self, name) < 0:
                raise ConfigError(f"CostModel.{name} must be >= 0")


@dataclass(frozen=True)
class RdmaConfig:
    """Bundle of all cost-model pieces, passed to the cluster builder."""

    nic: NicConfig = field(default_factory=NicConfig)
    fabric: FabricConfig = field(default_factory=FabricConfig)
    cpu: CostModel = field(default_factory=CostModel)

    def with_nic(self, **overrides) -> "RdmaConfig":
        return replace(self, nic=replace(self.nic, **overrides))

    def with_fabric(self, **overrides) -> "RdmaConfig":
        return replace(self, fabric=replace(self.fabric, **overrides))

    def with_cpu(self, **overrides) -> "RdmaConfig":
        return replace(self, cpu=replace(self.cpu, **overrides))


#: Expected unloaded one-sided round trip with a *warm* QP context (cold
#: ops additionally pay the QPC miss penalty at each NIC), used by
#: calibration tests: TX path (pcie + tx) + fabric + RX path (rx + pcie)
#: + fabric back + completion pcie.
def unloaded_remote_read_ns(cfg: RdmaConfig) -> float:
    nic, fab = cfg.nic, cfg.fabric
    return (nic.pcie_crossing_ns + nic.tx_service_ns
            + fab.one_way_latency_ns
            + nic.rx_service_ns + nic.pcie_crossing_ns
            + fab.one_way_latency_ns
            + nic.pcie_crossing_ns)
