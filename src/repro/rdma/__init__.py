"""RNIC, fabric and one-sided verbs model.

This package is the substitute for the paper's Mellanox ConnectX-3 +
CloudLab testbed.  It models the mechanisms the paper's evaluation
depends on:

* **NIC pipelines** — per-NIC TX and RX service stations (FIFO
  resources).  Ops queue under load; RX service time inflates with
  backlog, reproducing the RX-buffer accumulation of §2 / Fig. 1.
* **PCIe** — a per-node resource crossed by doorbells, DMA, and
  completions.  Loopback ops cross it on both the send and receive side
  of the *same* NIC, draining bandwidth exactly as the paper describes.
* **QPC cache** — an LRU of queue-pair contexts per NIC; misses add a
  reload penalty (QP thrashing, [31] in the paper).
* **verbs** — ``rRead``/``rWrite``/``rCAS``/``rFAA`` one-sided ops.  A
  remote RMW holds the target's RX station for its whole read→write
  window, so remote atomics serialize against each other (InfiniBand
  semantics) while remaining non-atomic with local ops (Table 1).
"""

from repro.rdma.config import CostModel, FabricConfig, NicConfig, RdmaConfig
from repro.rdma.qp import QpcCache, qp_id
from repro.rdma.nic import Rnic
from repro.rdma.network import RdmaNetwork

__all__ = [
    "NicConfig",
    "FabricConfig",
    "CostModel",
    "RdmaConfig",
    "QpcCache",
    "qp_id",
    "Rnic",
    "RdmaNetwork",
]
