"""Queue pairs and the QP-context (QPC) cache.

Every (thread, destination-node) connection is a reliable-connected
queue pair.  The RNIC keeps QP contexts (256 B each on CX-4-class
hardware) in a small on-chip cache; once live connections outnumber
cache entries the NIC *thrashes* — every op pays a context reload from
host memory.  The paper (§2, citing StaR [31]) identifies this as the
second RDMA scalability pitfall, and credits ALock with removing the
loopback QPs (1/n of the system's QPs) from the working set.
"""

from __future__ import annotations

from collections import OrderedDict


def qp_id(src_node: int, src_thread: int, dst_node: int) -> tuple[int, int, int]:
    """Identity of the QP thread ``src_thread`` on ``src_node`` uses to
    reach ``dst_node``.  A loopback QP has ``src_node == dst_node``."""
    return (src_node, src_thread, dst_node)


class QpcCache:
    """LRU cache of QP contexts for one RNIC.

    :meth:`access` returns True on hit.  On miss the entry is loaded
    (evicting the least-recently used when full) and the *caller* charges
    the reload penalty — the cache itself is timeless.
    """

    __slots__ = ("capacity", "_entries", "hits", "misses", "evictions")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"QPC cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[tuple, None] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def access(self, qp: tuple) -> bool:
        """Touch ``qp``; True if it was cached (no reload needed)."""
        if qp in self._entries:
            self._entries.move_to_end(qp)
            self.hits += 1
            return True
        self.misses += 1
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[qp] = None
        return False

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, qp: tuple) -> bool:
        return qp in self._entries

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = self.misses = self.evictions = 0
