"""Two-sided (send/receive) messaging and RPC on top of the NIC model.

The paper's introduction contrasts one-sided RDMA with RPC-based
designs: handling synchronization at the receiving node keeps local and
remote accesses trivially atomic (one CPU owns the state) but "nullifies
the performance benefit of directly accessing remote memory" — every
operation pays two message traversals plus the server's CPU, which
becomes the bottleneck.  This module provides the substrate to measure
that trade-off: :class:`RpcTransport` sends messages through the same
TX/RX pipelines and fabric as the verbs, and server handlers process
requests from a per-node inbox serialized by a CPU resource.

Messages between co-located client and server skip the NIC (an
in-process queue with a small IPC cost) — the *best case* for RPC, so
the comparison against ALock is conservative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common.errors import ConfigError
from repro.rdma.network import RdmaNetwork
from repro.rdma.qp import qp_id
from repro.sim.core import Environment, Event
from repro.sim.resources import Resource, Store

#: Cost of an in-process (same-node) request or reply hop.
LOCAL_IPC_NS = 150.0
#: Server CPU time to decode + handle one request.
HANDLER_CPU_NS = 350.0


@dataclass
class RpcRequest:
    """One in-flight request; the transport fills in the reply path."""

    src_node: int
    src_thread: int
    payload: Any
    reply_event: Event = field(repr=False, default=None)  # type: ignore[assignment]


class RpcTransport:
    """Send/receive messaging over the cluster's NICs.

    One inbox (:class:`Store`) and one single-threaded CPU
    (:class:`Resource`) per node — the paper's RPC model where a
    receiving thread owns all synchronization state of its node.
    """

    def __init__(self, env: Environment, network: RdmaNetwork):
        self.env = env
        self.network = network
        n = len(network.nics)
        self.inboxes = [Store(env, name=f"rpc-inbox-{i}") for i in range(n)]
        self.server_cpu = [Resource(env, 1, name=f"rpc-cpu-{i}") for i in range(n)]
        # statistics
        self.messages_sent = 0
        self.local_ipc_messages = 0

    # -- client side ----------------------------------------------------
    def call(self, src_node: int, src_thread: int, dst_node: int,
             payload: Any):
        """Issue a request and wait for the server's reply (generator;
        returns the reply value)."""
        if not 0 <= dst_node < len(self.inboxes):
            raise ConfigError(f"no such node {dst_node}")
        request = RpcRequest(src_node, src_thread, payload,
                             reply_event=self.env.event())
        yield from self._send(src_node, src_thread, dst_node)
        self.inboxes[dst_node].put(request)
        reply = yield request.reply_event
        return reply

    def _send(self, src_node: int, src_thread: int, dst_node: int):
        """One message traversal: NIC TX -> fabric -> NIC RX (or IPC)."""
        self.messages_sent += 1
        if src_node == dst_node:
            self.local_ipc_messages += 1
            yield self.env.timeout(LOCAL_IPC_NS)
            return
        qp = qp_id(src_node, src_thread, dst_node)
        src_nic = self.network.nics[src_node]
        dst_nic = self.network.nics[dst_node]
        yield from src_nic.send_side(qp)
        yield self.env.timeout(self.network._fabric_delay())
        yield from dst_nic.receive_side(qp)

    # -- server side ---------------------------------------------------
    def serve(self, node: int, handler):
        """The server loop for ``node`` (run it with ``env.process``).

        ``handler(request) -> (reply_value | None, deferred)`` is a plain
        function; returning ``deferred=True`` means the handler will
        complete the request later via :meth:`reply` (e.g. a lock grant
        queued behind the current holder).
        """
        inbox = self.inboxes[node]
        cpu = self.server_cpu[node]
        env = self.env
        while True:
            request = yield inbox.get()
            yield from cpu.serve(HANDLER_CPU_NS)
            value, deferred = handler(request)
            if not deferred:
                self.reply(node, request, value)

    def reply(self, node: int, request: RpcRequest, value: Any) -> None:
        """Complete ``request``: simulate the reply traversal, then
        trigger the client's event."""
        env = self.env

        def deliver():
            yield from self._send(node, 0, request.src_node)
            request.reply_event.succeed(value)

        env.process(deliver(), name=f"rpc-reply-n{node}")
