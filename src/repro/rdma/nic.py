"""The RNIC model: TX/RX pipelines, PCIe, QPC cache, congestion.

An op's path through a NIC is a sequence of resource holds:

* **send side** — one PCIe crossing (WQE fetch via doorbell + DMA) then
  the TX pipeline for ``tx_service_ns``.
* **receive side** — the RX pipeline, whose effective service time
  inflates with the backlog queued at arrival (RX-buffer accumulation
  under PCIe backpressure, the Fig. 1 mechanism), then one PCIe crossing
  to execute the DMA against host memory.  Remote atomics additionally
  hold the RX pipeline for the ``atomic_window_ns`` read→write-back
  window, which serializes them against each other at the target.
* **completion** — one PCIe crossing on the requester side when the ACK
  arrives.

A loopback op (§2) runs the send side and receive side on the *same*
NIC, skipping the fabric but paying an internal turnaround — so loopback
traffic occupies both pipelines and three PCIe crossings per op, which
is why it saturates a node long before real network traffic would.
"""

from __future__ import annotations

from repro.rdma.config import NicConfig
from repro.rdma.qp import QpcCache
from repro.sim.core import Environment, Timeout
from repro.sim.resources import Resource


class Rnic:
    """One node's RDMA NIC."""

    __slots__ = ("env", "node_id", "config", "tx", "rx", "pcie", "qpc",
                 "tx_ops", "rx_ops", "loopback_ops", "qpc_penalty_ns_total",
                 "_pcie_crossing_ns", "_tx_service_ns", "_rx_service_ns",
                 "_rx_congestion_threshold", "_rx_congestion_factor",
                 "_rx_congestion_max_factor", "_qpc_miss_penalty_ns",
                 "_loopback_turnaround_ns", "_atomic_window_ns")

    def __init__(self, env: Environment, node_id: int, config: NicConfig):
        self.env = env
        self.node_id = node_id
        self.config = config
        self.tx = Resource(env, 1, name=f"nic{node_id}.tx")
        self.rx = Resource(env, 1, name=f"nic{node_id}.rx")
        self.pcie = Resource(env, config.pcie_lanes, name=f"nic{node_id}.pcie")
        self.qpc = QpcCache(config.qpc_cache_entries)
        # Per-op latency parameters, cached off the config object: the
        # config is immutable for the lifetime of the NIC and these are
        # read on every verb, where the chained attribute lookups show up
        # in engine profiles.
        self._pcie_crossing_ns = config.pcie_crossing_ns
        self._tx_service_ns = config.tx_service_ns
        self._rx_service_ns = config.rx_service_ns
        self._rx_congestion_threshold = config.rx_congestion_threshold
        self._rx_congestion_factor = config.rx_congestion_factor
        self._rx_congestion_max_factor = config.rx_congestion_max_factor
        self._qpc_miss_penalty_ns = config.qpc_miss_penalty_ns
        self._loopback_turnaround_ns = config.loopback_turnaround_ns
        self._atomic_window_ns = config.atomic_window_ns
        # statistics
        self.tx_ops = 0
        self.rx_ops = 0
        self.loopback_ops = 0
        self.qpc_penalty_ns_total = 0.0

    # -- building blocks -------------------------------------------------
    def _qpc_penalty(self, qp: tuple) -> float:
        """Touch the QPC cache; return the reload penalty (0 on hit)."""
        if self.qpc.access(qp):
            return 0.0
        self.qpc_penalty_ns_total += self._qpc_miss_penalty_ns
        return self._qpc_miss_penalty_ns

    def pcie_crossing(self):
        """Process fragment: one PCIe transaction."""
        yield from self.pcie.serve(self._pcie_crossing_ns)

    def send_side(self, qp: tuple):
        """Process fragment: requester-side work for one outbound op."""
        self.tx_ops += 1
        yield from self.pcie.serve(self._pcie_crossing_ns)
        service = self._tx_service_ns + self._qpc_penalty(qp)
        yield from self.tx.serve(service)

    def _rx_service_time(self) -> float:
        """RX service with congestion inflation, based on the backlog
        present when this op reaches the head of the queue."""
        backlog = len(self.rx._queue)
        over = backlog - self._rx_congestion_threshold
        if over <= 0:
            return self._rx_service_ns
        factor = min(1.0 + self._rx_congestion_factor * over,
                     self._rx_congestion_max_factor)
        return self._rx_service_ns * factor

    def receive_side(self, qp: tuple, *, atomic: bool = False,
                     execute=None):
        """Process fragment: target-side work for one inbound op.

        Args:
            qp: queue-pair identity (touches this NIC's QPC cache too —
                the responder also holds connection state).
            atomic: hold the RX pipeline for the full RMW window so
                remote atomics serialize at the target.
            execute: optional callable run at the op's *linearization
                point*: for plain ops, after RX service; for atomics it
                receives a ``commit`` phase via the returned generator
                protocol (see :mod:`repro.rdma.network`).
        """
        self.rx_ops += 1
        penalty = self._qpc_penalty(qp)
        # Interrupt-safe admission: a fault-layer watchdog may kill this
        # op while it is still queued behind the RX pipeline.
        yield from self.rx.acquire()
        try:
            yield Timeout(self.env, self._rx_service_time() + penalty)
            if atomic:
                # read phase happens now; write-back lands after the window
                result = execute("read") if execute is not None else None
                yield Timeout(self.env, self._atomic_window_ns)
                if execute is not None:
                    execute("commit")
            else:
                result = execute() if execute is not None else None
        finally:
            self.rx.release()
        yield from self.pcie.serve(self._pcie_crossing_ns)
        return result

    def loopback_turnaround(self):
        """Process fragment: internal TX→RX handoff on the same NIC."""
        self.loopback_ops += 1
        yield Timeout(self.env, self._loopback_turnaround_ns)

    # -- reporting -----------------------------------------------------
    def stats(self) -> dict:
        return {
            "node": self.node_id,
            "tx_ops": self.tx_ops,
            "rx_ops": self.rx_ops,
            "loopback_ops": self.loopback_ops,
            "tx_utilization": self.tx.utilization(),
            "rx_utilization": self.rx.utilization(),
            "pcie_utilization": self.pcie.utilization(),
            "rx_peak_queue": self.rx.peak_queue,
            "qpc_miss_rate": self.qpc.miss_rate,
            "qpc_penalty_ns_total": self.qpc_penalty_ns_total,
        }
