"""Decision strings: the portable record of one explored schedule.

A run's schedule is fully determined by what the policy chose at each
*choice point* (a step where two or more events were ready at the same
sim time).  Since choice 0 is the default scheduler's pick, only the
non-default choices carry information — a decision string is the sparse
map ``{choice_index: ready_list_index}`` of those, rendered as
``"17:2,45:1"``.

Sparseness is what makes shrinking work: deleting one entry leaves every
other entry attached to the same choice point (the run up to the first
*remaining* entry is unchanged), so delta debugging can remove
interventions independently instead of shifting a dense string.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.common.errors import ConfigError


class Decisions:
    """An immutable sparse decision string.

    ``len()`` counts the non-default decisions — the "number of
    scheduling decisions" a counterexample needs.
    """

    __slots__ = ("_map",)

    def __init__(self, entries: Iterable[tuple[int, int]] = ()):
        m: dict[int, int] = {}
        for k, v in entries:
            k, v = int(k), int(v)
            if k < 0 or v < 0:
                raise ConfigError(f"decision entries must be >= 0, got {k}:{v}")
            if v != 0:
                m[k] = v
        # insertion order = sorted order, kept for stable iteration/repr
        self._map = dict(sorted(m.items()))

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_dense(cls, log: Iterable[int]) -> "Decisions":
        """From an :attr:`Environment.schedule_decisions` dense log."""
        return cls((k, v) for k, v in enumerate(log) if v != 0)

    @classmethod
    def from_mapping(cls, mapping: Mapping[int, int]) -> "Decisions":
        return cls(mapping.items())

    @classmethod
    def parse(cls, text: str) -> "Decisions":
        """Inverse of :meth:`to_string` (``"17:2,45:1"``; "" = empty)."""
        text = text.strip()
        if not text:
            return cls()
        entries = []
        for part in text.split(","):
            try:
                k, v = part.split(":")
                entries.append((int(k), int(v)))
            except ValueError:
                raise ConfigError(
                    f"bad decision string component {part!r}; expected "
                    f"'choice_index:option' pairs like '17:2,45:1'") from None
        return cls(entries)

    # -- queries --------------------------------------------------------
    def get(self, choice_index: int, default: int = 0) -> int:
        return self._map.get(choice_index, default)

    def items(self) -> Iterator[tuple[int, int]]:
        return iter(self._map.items())

    def __len__(self) -> int:
        return len(self._map)

    def __bool__(self) -> bool:
        return bool(self._map)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Decisions) and self._map == other._map

    def __hash__(self) -> int:
        # Tuples of ints hash identically across processes (only str
        # hashing is PYTHONHASHSEED-randomized), and this hash never
        # feeds scheduling — only dict/set membership in callers.
        return hash(tuple(self._map.items()))  # simlint: ignore[nondet-source]

    @property
    def last_index(self) -> int:
        """Largest choice index mentioned (-1 when empty)."""
        return max(self._map) if self._map else -1

    # -- editing (used by the shrinker) --------------------------------
    def without(self, keys: Iterable[int]) -> "Decisions":
        """A copy with the given choice indices reset to the default."""
        drop = set(keys)
        return Decisions((k, v) for k, v in self._map.items() if k not in drop)

    def replace(self, key: int, value: int) -> "Decisions":
        entries = dict(self._map)
        entries[key] = value
        return Decisions(entries.items())

    # -- rendering ------------------------------------------------------
    def to_string(self) -> str:
        return ",".join(f"{k}:{v}" for k, v in self._map.items())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Decisions({self.to_string()!r})"


__all__ = ["Decisions"]
