"""The explorer: run scenarios under policies, classify, replay.

One *schedule* = one fresh build of a scenario run under one policy
until every client finishes, the event heap drains (deadlock), or the
scenario deadline passes (stall/livelock).  The run's tie-break choices
are recorded as a sparse decision string; feeding that string back
through :func:`replay` reproduces the execution byte for byte (same
trace, same metrics, same digest) — the property the shrinker and the
regression suite are built on.

Failure taxonomy (``ScheduleResult.failure_kind``):

* ``"exception"`` — a client process died (e.g. the holder oracle's
  :class:`~repro.common.errors.ProtocolError` on a mutual-exclusion
  violation).
* ``"deadlock"``  — the heap drained with clients still alive (all
  parked on events nobody will trigger); the detail names each stuck
  process via :meth:`Environment.describe_alive`.
* ``"stall"``     — the deadline passed with clients alive but events
  still flowing: livelock or starvation.
* ``"checker"``   — the run completed but a post-hoc checker rejected
  it (CS overlap, budget bound, lost updates, race audit,
  linearizability).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Optional

from repro.common.rng import derive_seed
from repro.obs.postmortem import dump_json, maybe_write_dump, snapshot
from repro.schedcheck.decisions import Decisions
from repro.schedcheck.checkers import run_all_checkers
from repro.schedcheck.policies import (
    PrefixPolicy,
    ReplayPolicy,
    SchedulePolicy,
    make_policy,
)

#: trace lines kept on each result for failure reports
TRACE_TAIL = 12


@dataclass
class ScheduleResult:
    """Outcome of one explored schedule."""

    ok: bool
    failure_kind: Optional[str] = None     # exception|deadlock|stall|checker
    detail: str = ""
    decisions: Decisions = field(default_factory=Decisions)
    dense: tuple = ()                      # raw per-choice-point picks
    fanouts: tuple = ()                    # ready-list size per choice point
    events: int = 0
    sim_time_ns: float = 0.0
    digest: str = ""                       # trace+metrics fingerprint
    trace_tail: tuple = ()
    schedule_index: int = -1               # position within an exploration
    policy_seed: Optional[int] = None
    #: post-mortem dump (canonical JSON, see repro.obs.postmortem) taken
    #: at the moment of failure; None for passing schedules.  Carried as
    #: a string so results cross process boundaries unchanged.
    dump: Optional[str] = None

    @property
    def n_choice_points(self) -> int:
        return len(self.dense)

    def summary(self) -> str:
        if self.ok:
            return (f"ok: {self.n_choice_points} choice points, "
                    f"{len(self.decisions)} non-default, "
                    f"{self.events} events, {self.sim_time_ns:.0f} ns")
        return (f"{self.failure_kind}: {self.detail} "
                f"[decisions {self.decisions.to_string() or '(default)'}]")


def execution_digest(cluster) -> str:
    """Fingerprint of one finished execution: every trace line plus the
    cluster's stats tree, hashed.  Two runs with equal digests performed
    the same protocol steps at the same times with the same outcomes."""
    h = hashlib.blake2b(digest_size=16)
    for ev in cluster.tracer:
        h.update(str(ev).encode())
        h.update(b"\n")
    h.update(json.dumps(cluster.stats(), sort_keys=True).encode())
    return h.hexdigest()


def run_schedule(scenario, policy: Optional[SchedulePolicy],
                 schedule_index: int = -1,
                 policy_seed: Optional[int] = None) -> ScheduleResult:
    """Build the scenario fresh and run it to completion under ``policy``
    (``None`` = the engine's un-policied fast path)."""
    run = scenario.build()
    env = run.cluster.env
    env.set_schedule_policy(policy)
    env.run(until=run.deadline_ns)

    dense = tuple(env.schedule_decisions)
    fanouts = tuple(env.schedule_fanouts)
    result = ScheduleResult(
        ok=True,
        decisions=Decisions.from_dense(dense),
        dense=dense, fanouts=fanouts,
        events=env.event_count, sim_time_ns=env.now,
        digest=execution_digest(run.cluster),
        trace_tail=tuple(str(ev) for ev in list(run.cluster.tracer)[-TRACE_TAIL:]),
        schedule_index=schedule_index, policy_seed=policy_seed)

    failed = [p for p in run.processes if p.triggered and not p.ok]
    alive = [p for p in run.processes if p.is_alive]
    error_repr = None
    if failed:
        p = failed[0]
        result.ok = False
        result.failure_kind = "exception"
        result.detail = (f"{p.name} died: {type(p.value).__name__}: {p.value}"
                         + (f" (+{len(failed) - 1} more)" if len(failed) > 1
                            else ""))
        error_repr = repr(p.value)
    elif alive:
        drained = env.peek() == float("inf")
        result.ok = False
        result.failure_kind = "deadlock" if drained else "stall"
        result.detail = (
            f"{len(alive)}/{len(run.processes)} clients "
            + ("parked with an empty schedule: " if drained
               else f"still running at the {run.deadline_ns:.0f} ns deadline: ")
            + env.describe_alive())
    else:
        problems = run_all_checkers(run.cluster.tracer, run.budgets,
                                    run.history)
        problems.extend(run.validate())
        if problems:
            result.ok = False
            result.failure_kind = "checker"
            result.detail = "; ".join(problems[:3]) + (
                f" (+{len(problems) - 3} more)" if len(problems) > 3 else "")
    if not result.ok:
        # Freeze the post-mortem while the failed execution's state is
        # still live: flight window, lock words, wait-for graph.
        result.dump = dump_json(snapshot(
            run.cluster, reason=result.failure_kind, detail=result.detail,
            table=run.table, decisions=result.decisions.to_string(),
            error=error_repr))
        maybe_write_dump(result.dump, result.failure_kind)
    return result


def replay(scenario, decisions, strict: bool = False) -> ScheduleResult:
    """Re-execute a recorded (possibly shrunk) decision string.

    ``decisions`` may be a :class:`Decisions`, a mapping, or a rendered
    string like ``"17:2,45:1"``.

    ``strict=True`` is the corpus-replay mode: when the scenario has
    drifted under the recording — the run ended before a recorded
    decision point, or a recorded pick had to be clamped to a narrower
    ready list — the result is reported as failure kind ``"stale"``
    instead of whatever the unfaithfully-replayed schedule happened to
    do.  A stale result's detail carries a re-shrink hint: the entry's
    decision string no longer describes this scenario and must be
    re-found and re-shrunk, not trusted.
    """
    if isinstance(decisions, str):
        decisions = Decisions.parse(decisions)
    policy = ReplayPolicy(decisions)
    result = run_schedule(scenario, policy)
    if strict:
        drift = policy.drift()
        if drift:
            result.ok = False
            result.failure_kind = "stale"
            result.detail = (
                "stale corpus entry: the scenario drifted under the "
                "recorded decisions (" + "; ".join(drift) + "); re-find "
                "and re-shrink it, e.g. alock-experiments fleet "
                "--write-corpus against the current code")
            result.dump = None
    return result


@dataclass
class ExplorationReport:
    """Aggregate outcome of a bounded exploration."""

    schedules_run: int = 0
    ok_count: int = 0
    distinct_executions: int = 0
    failures: list = field(default_factory=list)   # ScheduleResult, capped
    failure_counts: dict = field(default_factory=dict)  # kind -> count
    #: cap on retained failure results (all are *counted*)
    max_kept: int = 16

    def record(self, result: ScheduleResult) -> None:
        self.schedules_run += 1
        if result.ok:
            self.ok_count += 1
        else:
            kind = result.failure_kind
            self.failure_counts[kind] = self.failure_counts.get(kind, 0) + 1
            if len(self.failures) < self.max_kept:
                self.failures.append(result)

    @property
    def first_failure(self) -> Optional[ScheduleResult]:
        return self.failures[0] if self.failures else None

    def summary(self) -> str:
        base = (f"{self.schedules_run} schedules: {self.ok_count} ok, "
                f"{self.schedules_run - self.ok_count} failed, "
                f"{self.distinct_executions} distinct executions")
        if self.failure_counts:
            kinds = ", ".join(f"{k}={v}" for k, v in
                              sorted(self.failure_counts.items()))
            base += f" ({kinds})"
        return base


def explore_random(scenario, n_schedules: int, seed: int = 0,
                   policy: str = "random", change_points: int = 3,
                   horizon: int = 500,
                   stop_on_failure: bool = False) -> ExplorationReport:
    """Run ``n_schedules`` independently seeded random (or PCT)
    schedules.  Schedule ``i``'s policy seed is
    ``derive_seed(seed, "schedcheck", "explore", i)`` — the whole
    exploration is reproducible from ``seed`` alone.
    """
    report = ExplorationReport()
    digests = set()
    for i in range(n_schedules):
        pseed = derive_seed(seed, "schedcheck", "explore", i)
        pol = make_policy(policy, pseed, change_points=change_points,
                          horizon=horizon)
        result = run_schedule(scenario, pol, schedule_index=i,
                              policy_seed=pseed)
        digests.add(result.digest)
        report.record(result)
        if stop_on_failure and not result.ok:
            break
    report.distinct_executions = len(digests)
    return report


def enumerate_schedules(scenario, max_schedules: int = 256,
                        max_choice_points: Optional[int] = None,
                        stop_on_failure: bool = False) -> ExplorationReport:
    """Bounded exhaustive enumeration (CHESS-style iterative DFS).

    Schedules are visited in lexicographic order of their dense decision
    vectors: each run extends the current forced prefix with defaults,
    then the deepest incrementable position (bounded by
    ``max_choice_points``) is bumped to produce the next prefix.  For
    tiny configurations this covers the entire tie-break tree; the
    report's ``distinct_executions`` tells you when the space was larger
    than the budget.

    Args:
        max_schedules: hard cap on runs.
        max_choice_points: only permute the first K choice points
            (``None`` = all — feasible only for very small scenarios).
    """
    report = ExplorationReport()
    digests = set()
    prefix: list[int] = []
    exhausted = False
    while not exhausted and report.schedules_run < max_schedules:
        result = run_schedule(scenario, PrefixPolicy(prefix),
                              schedule_index=report.schedules_run)
        digests.add(result.digest)
        report.record(result)
        if stop_on_failure and not result.ok:
            break
        dense, fanouts = list(result.dense), result.fanouts
        limit = len(dense)
        if max_choice_points is not None:
            limit = min(limit, max_choice_points)
        i = limit - 1
        while i >= 0 and dense[i] + 1 >= fanouts[i]:
            i -= 1
        if i < 0:
            exhausted = True
        else:
            prefix = dense[:i] + [dense[i] + 1]
    report.distinct_executions = len(digests)
    return report


__all__ = [
    "ScheduleResult", "ExplorationReport", "execution_digest",
    "run_schedule", "replay", "explore_random", "enumerate_schedules",
]
