"""Determinism selftest: ``python -m repro.schedcheck.selftest``.

Prints a canonical transcript of a small exploration — per-schedule
digests, decision strings, and report summaries.  The test gate runs
this module in subprocesses under different ``PYTHONHASHSEED`` values
and asserts the output is byte-identical: schedule exploration must be a
pure function of its seeds, or recorded decision strings would not
replay across machines.
"""

from __future__ import annotations

import hashlib

from repro.common.rng import derive_seed
from repro.schedcheck.explore import explore_random, replay, run_schedule
from repro.schedcheck.fleet import SEEDED_BUGS, FleetConfig, run_fleet
from repro.schedcheck.policies import FifoPolicy, make_policy
from repro.schedcheck.scenario import LockScenario


def main() -> None:
    sc = LockScenario(lock_kind="alock", n_nodes=2, threads_per_node=2,
                      ops_per_thread=2, seed=5)

    base = run_schedule(sc, None)
    fifo = run_schedule(sc, FifoPolicy())
    print(f"baseline digest={base.digest} events={base.events}")
    print(f"fifo     digest={fifo.digest} match={fifo.digest == base.digest}")

    for kind in ("random", "pct"):
        for i in range(3):
            seed = derive_seed(17, "selftest", kind, i)
            r = run_schedule(sc, make_policy(kind, seed))
            rr = replay(sc, r.decisions)
            print(f"{kind}[{i}] digest={r.digest} "
                  f"decisions={r.decisions.to_string() or '-'} "
                  f"replay_match={rr.digest == r.digest}")

    report = explore_random(sc, 6, seed=23)
    print("explore:", report.summary())

    # A tiny in-process fleet over the seeded bugs: the canonical report
    # (and hence every frozen corpus entry) must be a pure function of
    # the config — immune to PYTHONHASHSEED like everything above.
    config = FleetConfig(
        scenarios=tuple((name, bug_sc) for name, bug_sc, _b in SEEDED_BUGS),
        budget=32, seed=1, cell_size=8, cells_per_round=2)
    fleet = run_fleet(config)
    digest = hashlib.blake2b(fleet.to_json_bytes(),
                             digest_size=8).hexdigest()
    print(f"fleet: report_digest={digest}")
    for s in fleet.scenarios:
        entry = "-" if s.entry is None else (
            f"{s.entry.stem()} decisions=\"{s.entry.decisions}\"")
        print(f"fleet[{s.name}]: run={s.schedules_run} "
              f"novel={s.coverage.get('prefixes_seen', 0)} "
              f"first_find={s.first_find} entry={entry}")


if __name__ == "__main__":
    main()
