"""Schedule exploration for the simulated lock implementations.

The engine dispatches same-time events in insertion order; this package
systematically *permutes* those tie-breaks — the one degree of freedom a
real machine has that a deterministic simulator normally erases — and
checks every resulting execution against mutual-exclusion, budget,
lost-update, race-audit and linearizability oracles.

Workflow: pick a :class:`~repro.schedcheck.scenario.LockScenario`,
explore with :func:`~repro.schedcheck.explore.explore_random` (seeded
random walk or PCT priorities) or
:func:`~repro.schedcheck.explore.enumerate_schedules` (bounded
exhaustive), then :func:`~repro.schedcheck.shrink.shrink_failure` any
failure down to a readable decision string and
:func:`~repro.schedcheck.explore.replay` it at will — replays are
byte-identical, across processes and hash seeds.
"""

from repro.schedcheck.checkers import (
    check_budget_bounds,
    check_cs_overlap,
    check_linearizability,
    run_all_checkers,
)
from repro.schedcheck.corpus import (
    CorpusEntry,
    check_entry,
    load_corpus,
    write_entry,
)
from repro.schedcheck.coverage import CoverageMap, MutationCandidate
from repro.schedcheck.decisions import Decisions
from repro.schedcheck.explore import (
    ExplorationReport,
    ScheduleResult,
    enumerate_schedules,
    execution_digest,
    explore_random,
    replay,
    run_schedule,
)
from repro.schedcheck.fleet import (
    FleetConfig,
    FleetReport,
    run_fleet,
    write_fleet_corpus,
)
from repro.schedcheck.history import HistoryRecorder, Op
from repro.schedcheck.linearize import (
    CounterModel,
    KvModel,
    check_history,
    check_linearizable,
)
from repro.schedcheck.policies import (
    FifoPolicy,
    PctPolicy,
    PrefixPolicy,
    PrefixThenRandomPolicy,
    RandomWalkPolicy,
    ReplayPolicy,
    SchedulePolicy,
    make_policy,
)
from repro.schedcheck.scenario import BuiltRun, LockScenario
from repro.schedcheck.shrink import ShrinkResult, shrink_failure

__all__ = [
    "BuiltRun", "CorpusEntry", "CounterModel", "CoverageMap", "Decisions",
    "ExplorationReport", "FifoPolicy", "FleetConfig", "FleetReport",
    "HistoryRecorder", "KvModel", "LockScenario", "MutationCandidate", "Op",
    "PctPolicy", "PrefixPolicy", "PrefixThenRandomPolicy",
    "RandomWalkPolicy", "ReplayPolicy", "SchedulePolicy", "ScheduleResult",
    "ShrinkResult", "check_budget_bounds", "check_cs_overlap",
    "check_entry", "check_history", "check_linearizability",
    "check_linearizable", "enumerate_schedules", "execution_digest",
    "explore_random", "load_corpus", "make_policy", "replay",
    "run_all_checkers", "run_fleet", "run_schedule", "shrink_failure",
    "write_entry", "write_fleet_corpus",
]
