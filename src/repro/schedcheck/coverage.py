"""Interleaving-prefix coverage: the signal that steers the fleet.

A schedule's identity, up to choice point ``k``, is the sequence of
``(decision, fanout)`` pairs the policy produced at points ``0..k`` —
the *interleaving prefix*.  Hashing every prefix of every run into a
seen-set gives exploration a cheap novelty signal:

* a run whose prefixes are all already seen re-executed a known region
  of the tie-break tree (random walks do this constantly: most of their
  per-point entropy is spent re-rolling the same early choices);
* a *novel* prefix at point ``k`` means the run entered territory no
  previous schedule touched from point ``k`` onward.

The steering trick is that **sibling prefixes are computable without
running anything**: at a novel point ``k`` with fanout ``f``, each of
the ``f - 1`` alternative decisions names an unexplored sibling region,
and its prefix hash is a pure function of the already-recorded log.
:func:`sibling_candidates` turns one executed schedule into a batch of
such near-miss prefixes; the fleet replays the best of them through
:class:`~repro.schedcheck.policies.PrefixThenRandomPolicy` (forced
prefix, then a seeded random tail) instead of rolling yet another walk
from the root.

Hashes are incremental blake2b over the byte-rendered pairs, so prefix
``k``'s hash costs O(1) given prefix ``k - 1``'s state — and they are
PYTHONHASHSEED-immune, unlike ``hash()``.  Everything here is pure
parent-side bookkeeping: workers only ship their decision/fanout logs
home (primitives), and the merge is a set union, so the resulting
coverage map is independent of worker count and completion order.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence

#: default prefix depth cap: points past this depth still execute, they
#: just stop contributing coverage (deep tails are mostly think-time
#: noise, and the cap bounds per-run bookkeeping to O(depth)).
DEFAULT_DEPTH = 64

#: candidate-pool sizing: generation stops accepting new candidates at
#: ``POOL_HIGH`` and the pool is re-ranked and clipped to ``POOL_LOW``
#: after every observation round.
POOL_HIGH = 512
POOL_LOW = 256


def _hasher() -> "hashlib._Hash":
    return hashlib.blake2b(digest_size=8)


def iter_prefix_hashes(dense: Sequence[int], fanouts: Sequence[int],
                       depth: int = DEFAULT_DEPTH) -> Iterator[str]:
    """Yield the prefix hash at each choice point of one run, in order.

    Point ``k``'s hash covers pairs ``0..k`` inclusive.  Only the first
    ``depth`` points are hashed.
    """
    h = _hasher()
    for k in range(min(len(dense), len(fanouts), depth)):
        h.update(b"%d/%d;" % (dense[k], fanouts[k]))
        yield h.hexdigest()


def prefix_hash(dense: Sequence[int], fanouts: Sequence[int]) -> str:
    """Hash of one complete prefix (the last value of
    :func:`iter_prefix_hashes` run to ``len(dense)``)."""
    h = _hasher()
    for d, f in zip(dense, fanouts):
        h.update(b"%d/%d;" % (d, f))
    return h.hexdigest()


@dataclass(frozen=True)
class MutationCandidate:
    """One unexplored sibling prefix, ready to force.

    Attributes:
        prefix: dense decision prefix ending in the flipped choice.
        hash: the sibling prefix's hash (dedup key; once this prefix
            executes, the run's own coverage marks it seen).
        weight: novelty count of the source run — runs that discovered
            more new territory breed higher-priority candidates.
        order: global generation sequence number; the deterministic
            tie-break under equal weight (earlier = first).
    """

    prefix: tuple
    hash: str
    weight: int
    order: int


class CoverageMap:
    """The seen-set of interleaving prefixes plus the candidate pool.

    ``observe`` is called by the fleet parent for every completed
    schedule **in deterministic merge order** (cell index, then in-cell
    index); because membership is a set union, the final map is the same
    for any worker count — only the ``novel`` attribution per run
    depends on order, which is why the order is fixed.
    """

    def __init__(self, depth: int = DEFAULT_DEPTH,
                 pool_high: int = POOL_HIGH, pool_low: int = POOL_LOW):
        self.depth = depth
        self.pool_high = pool_high
        self.pool_low = pool_low
        self._seen: set[str] = set()
        self._queued: set[str] = set()
        self._pool: list[MutationCandidate] = []
        self._order = 0
        self.runs_observed = 0
        self.novel_runs = 0
        self.candidates_generated = 0
        self.candidates_issued = 0

    # -- observation ----------------------------------------------------

    def observe(self, dense: Sequence[int],
                fanouts: Sequence[int]) -> tuple[int, ...]:
        """Fold one run's log into the seen-set.

        Returns the choice-point indices whose prefixes were novel (used
        by :meth:`breed` to generate siblings).
        """
        novel: list[int] = []
        for k, h in enumerate(iter_prefix_hashes(dense, fanouts, self.depth)):
            if h not in self._seen:
                self._seen.add(h)
                novel.append(k)
        self.runs_observed += 1
        if novel:
            self.novel_runs += 1
        return tuple(novel)

    def breed(self, dense: Sequence[int], fanouts: Sequence[int],
              novel_points: Iterable[int]) -> int:
        """Generate sibling candidates at each novel point of a run.

        At novel point ``k`` every alternative decision ``alt != dense[k]``
        (with the same observed fanout) names a sibling prefix; unseen,
        unqueued siblings join the pool weighted by the run's novelty
        count.  Returns how many candidates were added.
        """
        novel_points = tuple(novel_points)
        weight = len(novel_points)
        added = 0
        h = _hasher()
        hashed_to = 0
        for k in novel_points:
            if k >= self.depth or len(self._pool) >= self.pool_high:
                break
            # advance the incremental hash state to just before point k
            while hashed_to < k:
                h.update(b"%d/%d;" % (dense[hashed_to], fanouts[hashed_to]))
                hashed_to += 1
            for alt in range(fanouts[k]):
                if alt == dense[k]:
                    continue
                sib = h.copy()
                sib.update(b"%d/%d;" % (alt, fanouts[k]))
                sib_hash = sib.hexdigest()
                if sib_hash in self._seen or sib_hash in self._queued:
                    continue
                self._queued.add(sib_hash)
                self._pool.append(MutationCandidate(
                    prefix=tuple(dense[:k]) + (alt,), hash=sib_hash,
                    weight=weight, order=self._order))
                self._order += 1
                added += 1
                if len(self._pool) >= self.pool_high:
                    break
        self.candidates_generated += added
        return added

    # -- scheduling -----------------------------------------------------

    def rerank(self) -> None:
        """Re-rank the pool — highest novelty weight first, generation
        order as tie-break — and clip it to ``pool_low``."""
        self._pool.sort(key=lambda c: (-c.weight, c.order))
        for dropped in self._pool[self.pool_low:]:
            self._queued.discard(dropped.hash)
        del self._pool[self.pool_low:]

    def take(self, n: int) -> list[MutationCandidate]:
        """Pop the ``n`` best candidates for the next mutation batch."""
        taken = self._pool[:n]
        del self._pool[:n]
        for cand in taken:
            self._queued.discard(cand.hash)
        self.candidates_issued += len(taken)
        return taken

    # -- reporting ------------------------------------------------------

    @property
    def prefixes_seen(self) -> int:
        return len(self._seen)

    @property
    def pool_size(self) -> int:
        return len(self._pool)

    def summary(self) -> dict:
        """Primitive snapshot for reports; deterministic (counts only —
        the set itself is never iterated)."""
        return {
            "prefixes_seen": self.prefixes_seen,
            "runs_observed": self.runs_observed,
            "novel_runs": self.novel_runs,
            "candidates_generated": self.candidates_generated,
            "candidates_issued": self.candidates_issued,
            "pool_size": self.pool_size,
            "depth": self.depth,
        }


__all__ = [
    "DEFAULT_DEPTH", "CoverageMap", "MutationCandidate",
    "iter_prefix_hashes", "prefix_hash",
]
