"""Fleet-scale schedule exploration: coverage-steered walks on the pool.

Exploration is embarrassingly parallel — every schedule is a sealed
build of a frozen :class:`~repro.schedcheck.scenario.LockScenario` plus
one derived policy seed — so the fleet fans walks across the
:mod:`repro.parallel` execution shells the same way sweeps fan cells:
primitive :class:`ExploreCell` units out, primitive :class:`CellOut`
records back, crash isolation per cell, byte-identical merge in cell
order.

The loop is **batch-synchronous novelty steering**.  Each round, every
active scenario contributes a few cells; a cell's job list mixes fresh
random/PCT walks with *mutations* — near-miss sibling prefixes bred by
the scenario's :class:`~repro.schedcheck.coverage.CoverageMap` from the
previous rounds' decision/fanout logs, replayed through
:class:`~repro.schedcheck.policies.PrefixThenRandomPolicy` (forced
prefix, seeded random tail).  The parent merges returned logs in
deterministic order, folds them into the coverage map, breeds the next
candidate batch, and schedules the next round.  With steering disabled
the fleet degrades to exactly :func:`~repro.schedcheck.explore
.explore_random`'s schedule stream (same walk-seed derivation), which
is what makes the novelty-vs-random quality comparison, and the
1/2/4-worker byte-identity tests, meaningful.

Every number in a :class:`FleetReport`'s canonical JSON is a pure
function of the :class:`FleetConfig` — worker count, chunk completion
order and ``PYTHONHASHSEED`` never leak in — and each scenario's first
kept failure is shrunk and frozen as a corpus entry
(:mod:`repro.schedcheck.corpus`) so a fleet find becomes a permanent
regression test.
"""

from __future__ import annotations

import hashlib
import json
import time
import traceback
from dataclasses import dataclass, field, fields
from typing import Callable, Optional

from repro.common.errors import ConfigError
from repro.common.rng import derive_seed
from repro.faults import FaultPlan
from repro.parallel.cells import check_boundary_value, worker_entry
from repro.parallel.engine import resolve_shell
from repro.schedcheck.corpus import (
    CorpusEntry,
    scenario_payload,
    write_entry,
)
from repro.schedcheck.coverage import DEFAULT_DEPTH, CoverageMap
from repro.schedcheck.decisions import Decisions
from repro.schedcheck.explore import ScheduleResult, run_schedule
from repro.schedcheck.policies import PrefixThenRandomPolicy, make_policy
from repro.schedcheck.scenario import LockScenario
from repro.schedcheck.shrink import shrink_failure

# ---------------------------------------------------------------------------
# seeded-bug scenario presets
# ---------------------------------------------------------------------------

#: (name, scenario, budget): the three opt-in lock defects, each found
#: by seeded random exploration within the stated schedule budget.
#: These are the documented reproduction constants — the mutation tests
#: (tests/schedcheck/test_mutations.py) and the CI fleet gate both
#: parametrize over this table.
SEEDED_BUGS: tuple = (
    (
        "no_victim_check",
        LockScenario(lock_kind="alock", n_nodes=2, threads_per_node=2,
                     ops_per_thread=2, think_ns=200.0, seed=0,
                     lock_options=(("bug", "no_victim_check"),)),
        50,
    ),
    (
        "skip_budget_wait",
        LockScenario(lock_kind="alock", n_nodes=1, threads_per_node=2,
                     ops_per_thread=4, think_ns=100.0, seed=2,
                     lock_options=(("bug", "skip_budget_wait"),)),
        50,
    ),
    (
        "lost_wakeup",
        LockScenario(lock_kind="mcs", n_nodes=1, threads_per_node=3,
                     ops_per_thread=3, seed=0,
                     lock_options=(("bug", "lost_wakeup"),
                                   ("poll_interval_ns", 200.0))),
        50,
    ),
)

#: Hardened variants for the coverage-quality comparison: client start
#: staggers thin out the time-0 tie cluster, so the bugs need rarer
#: deep interleavings and pure random stops finding them immediately —
#: which is where novelty steering shows its value.  (At stagger 0 all
#: three bugs fall out of the first handful of schedules and steering
#: can't beat that.)
HARDENED_BUGS: tuple = (
    (
        "no_victim_check",
        LockScenario(lock_kind="alock", n_nodes=2, threads_per_node=2,
                     ops_per_thread=2, think_ns=200.0, stagger_ns=600.0,
                     seed=0, lock_options=(("bug", "no_victim_check"),)),
        150,
    ),
    (
        "skip_budget_wait",
        LockScenario(lock_kind="alock", n_nodes=1, threads_per_node=2,
                     ops_per_thread=4, think_ns=100.0, seed=2,
                     lock_options=(("bug", "skip_budget_wait"),)),
        150,
    ),
    (
        "lost_wakeup",
        LockScenario(lock_kind="mcs", n_nodes=1, threads_per_node=3,
                     ops_per_thread=3, stagger_ns=700.0, seed=0,
                     lock_options=(("bug", "lost_wakeup"),
                                   ("poll_interval_ns", 200.0))),
        150,
    ),
)

#: Fault-injection fleet: correct locks under verb loss, latency spikes
#: and a crash window — the interleaving space *around* recovery paths.
#: These scenarios are expected to survive exploration (failures here
#: are real findings, not seeded).
FAULT_SCENARIOS: tuple = (
    (
        "alock_verb_loss",
        LockScenario(lock_kind="alock", n_nodes=2, threads_per_node=2,
                     ops_per_thread=2, think_ns=200.0, seed=0,
                     faults=FaultPlan(verb_loss_rate=0.05)),
        100,
    ),
    (
        "alock_spikes_crash",
        LockScenario(lock_kind="alock", n_nodes=2, threads_per_node=2,
                     ops_per_thread=2, seed=1,
                     faults=FaultPlan(spike_rate=0.1, spike_ns=2_000.0)),
        100,
    ),
    (
        "mcs_verb_loss",
        LockScenario(lock_kind="mcs", n_nodes=2, threads_per_node=2,
                     ops_per_thread=2, seed=0,
                     faults=FaultPlan(verb_loss_rate=0.05)),
        100,
    ),
)

PRESETS: dict = {
    "bugs": SEEDED_BUGS,
    "bugs-hard": HARDENED_BUGS,
    "faults": FAULT_SCENARIOS,
}


def correct_twin(scenario: LockScenario) -> LockScenario:
    """The same scenario with its seeded bug switched off — what the
    corpus replay suite runs to prove an entry *passes on fixed code*."""
    options = tuple((k, v) for k, v in scenario.lock_options if k != "bug")
    return LockScenario(**{**scenario.__dict__, "lock_options": options})


# ---------------------------------------------------------------------------
# the process boundary: cells out, records back
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ExploreCell:
    """One schedulable batch of schedules for one scenario — primitives
    only (audited by ``check_boundary_value`` on construction).

    ``jobs`` entries are either ``("random", walk_index)`` — policy seed
    ``derive_seed(seed, "schedcheck", "explore", walk_index)``, the
    exact stream :func:`explore_random` would use — or
    ``("mut", mut_index, prefix)`` — a bred sibling prefix forced by
    :class:`PrefixThenRandomPolicy` with a tail seed derived from
    ``mut_index``.
    """

    index: int                 # global cell index = merge order
    scenario_name: str
    scenario: LockScenario
    seed: int                  # the fleet's master seed
    start_position: int        # scenario-global position of jobs[0]
    jobs: tuple
    policy: str = "random"
    change_points: int = 3
    horizon: int = 500
    depth: int = DEFAULT_DEPTH
    detail_limit: int = 400

    def __post_init__(self) -> None:
        check_boundary_value(self.jobs, "cell.jobs")
        check_boundary_value(self.scenario, "cell.scenario")


@dataclass(frozen=True)
class WalkRecord:
    """One executed schedule, reduced to what the parent needs:
    verdict, replay string, digest, and the coverage-capped
    decision/fanout logs.  Primitives only."""

    ok: bool
    kind: Optional[str]
    detail: str
    digest: str
    decisions: str
    dense: tuple
    fanouts: tuple
    n_points: int
    policy_seed: int
    source: str                # "random" | "mut"
    dump: Optional[str] = None


@dataclass(frozen=True)
class CellOut:
    """What one cell sent home; a crashed cell carries the error text
    instead of records (per-cell isolation, same as sweep cells)."""

    index: int
    ok: bool
    records: tuple = ()
    error: Optional[str] = None


def _run_one_job(cell: ExploreCell, job: tuple) -> WalkRecord:
    if job[0] == "random":
        pseed = derive_seed(cell.seed, "schedcheck", "explore", job[1])
        policy = make_policy(cell.policy, pseed,
                             change_points=cell.change_points,
                             horizon=cell.horizon)
    elif job[0] == "mut":
        pseed = derive_seed(cell.seed, "schedcheck", "fleet-mut", job[1])
        policy = PrefixThenRandomPolicy(job[2], pseed)
    else:  # pragma: no cover - guarded by cell construction
        raise ConfigError(f"unknown fleet job kind {job[0]!r}")
    r = run_schedule(cell.scenario, policy, policy_seed=pseed)
    return WalkRecord(
        ok=r.ok, kind=r.failure_kind,
        detail=r.detail[:cell.detail_limit],
        digest=r.digest, decisions=r.decisions.to_string(),
        dense=r.dense[:cell.depth], fanouts=r.fanouts[:cell.depth],
        n_points=r.n_choice_points, policy_seed=pseed, source=job[0],
        dump=r.dump)


@worker_entry
def run_explore_chunk(chunk: "tuple[ExploreCell, ...]") -> list[CellOut]:
    """Worker entry point: execute one chunk of exploration cells.

    Each cell builds its scenario fresh per schedule inside this
    process; exceptions become failed-cell records and never escape the
    chunk (crash isolation, mirroring ``run_cell_chunk``)."""
    out: list[CellOut] = []
    for cell in chunk:
        try:
            records = tuple(_run_one_job(cell, job) for job in cell.jobs)
            out.append(CellOut(index=cell.index, ok=True, records=records))
        except Exception as exc:
            out.append(CellOut(index=cell.index, ok=False,
                               error=f"{exc!r}\n{traceback.format_exc()}"))
    return out


# ---------------------------------------------------------------------------
# configuration and reports
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FleetConfig:
    """Everything that determines a fleet run's canonical output.

    Worker count is deliberately *not* here: it is a runtime argument of
    :func:`run_fleet`, and the determinism tests assert it cannot change
    a single report byte.

    Attributes:
        scenarios: ``((name, scenario), ...)`` — each steered and
            reported independently.
        budget: schedule budget **per scenario**.
        seed: master seed; every policy seed derives from it.
        coverage: enable novelty steering (off = pure random/PCT walks,
            byte-compatible with :func:`explore_random`'s stream).
        cell_size: schedules per cell (the merge/crash-isolation unit).
        cells_per_round: cells each active scenario contributes per
            round; one round is one pool barrier.
        policy: base walk policy (``random`` | ``pct``).
        depth: coverage prefix depth cap.
        mutation_num/_den: fraction of schedule positions given to
            mutation jobs when candidates are available (default 3/4 —
            measured best on the hardened seeded bugs; see
            ``benchmarks/baselines/QUALITY_schedcheck.json``).
        stop_on_find: stop scheduling new rounds for a scenario once a
            failure is recorded (its in-flight round still completes).
        shrink: ddmin each scenario's first failure into a corpus entry.
    """

    scenarios: tuple
    budget: int = 2000
    seed: int = 0
    coverage: bool = True
    cell_size: int = 16
    cells_per_round: int = 4
    policy: str = "random"
    change_points: int = 3
    horizon: int = 500
    depth: int = DEFAULT_DEPTH
    mutation_num: int = 3
    mutation_den: int = 4
    stop_on_find: bool = True
    max_kept: int = 8
    detail_limit: int = 400
    shrink: bool = True
    shrink_replays: int = 400

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ConfigError("FleetConfig needs at least one scenario")
        names = [name for name, _sc in self.scenarios]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate scenario names: {names}")
        if self.budget < 1:
            raise ConfigError("budget must be >= 1")
        if self.cell_size < 1 or self.cells_per_round < 1:
            raise ConfigError("cell_size and cells_per_round must be >= 1")
        if self.policy not in ("random", "pct"):
            raise ConfigError(f"fleet policy must be random or pct, "
                              f"got {self.policy!r}")
        if not 0 <= self.mutation_num <= self.mutation_den:
            raise ConfigError("mutation fraction must be in [0, 1]")

    def payload(self) -> dict:
        out: dict = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "scenarios":
                out[f.name] = [[name, scenario_payload(sc)]
                               for name, sc in value]
            else:
                out[f.name] = value
        return out


@dataclass
class ScenarioFleetReport:
    """Per-scenario outcome of a fleet run (canonical fields only)."""

    name: str
    schedules_run: int = 0
    ok_count: int = 0
    failure_counts: dict = field(default_factory=dict)
    distinct_executions: int = 0
    crashed_cells: int = 0
    random_run: int = 0
    mut_run: int = 0
    #: scenario-global position of the first failing schedule (None =
    #: survived the budget).  In random mode this equals the failing
    #: index :func:`explore_random` would report.
    first_find: Optional[int] = None
    first_find_source: Optional[str] = None
    #: kept failures in position order (capped), as primitive dicts:
    #: position, kind, detail, decisions, digest, source.
    kept: list = field(default_factory=list)
    coverage: dict = field(default_factory=dict)
    #: shrink stats + the frozen corpus entry for the first failure
    shrink: Optional[dict] = None
    entry: Optional[CorpusEntry] = None
    #: the confirming replay's post-mortem (written next to the entry
    #: by :func:`write_fleet_corpus`); not part of canonical bytes —
    #: its digest is.
    entry_dump: Optional[str] = None

    def payload(self) -> dict:
        out = {
            "name": self.name,
            "schedules_run": self.schedules_run,
            "ok_count": self.ok_count,
            "failure_counts": dict(sorted(self.failure_counts.items())),
            "distinct_executions": self.distinct_executions,
            "crashed_cells": self.crashed_cells,
            "random_run": self.random_run,
            "mut_run": self.mut_run,
            "first_find": self.first_find,
            "first_find_source": self.first_find_source,
            "kept": self.kept,
            "coverage": self.coverage,
            "shrink": self.shrink,
            "entry": None if self.entry is None else self.entry.payload(),
        }
        if self.entry_dump is not None:
            out["entry_dump_digest"] = hashlib.blake2b(
                self.entry_dump.encode("utf-8"), digest_size=8).hexdigest()
        return out


@dataclass
class FleetReport:
    """Aggregate fleet outcome.  ``to_json_bytes`` is canonical — a
    pure function of the config — while wall-clock derived fields
    (``elapsed_s``, ``schedules_per_sec``, ``workers``) live outside
    the canonical payload, on the report object only."""

    config: FleetConfig
    scenarios: list = field(default_factory=list)
    total_schedules: int = 0
    rounds: int = 0
    workers: int = 0
    elapsed_s: float = 0.0

    @property
    def schedules_per_sec(self) -> float:
        return self.total_schedules / self.elapsed_s if self.elapsed_s else 0.0

    @property
    def found(self) -> "list[ScenarioFleetReport]":
        return [s for s in self.scenarios if s.first_find is not None]

    def scenario(self, name: str) -> ScenarioFleetReport:
        for s in self.scenarios:
            if s.name == name:
                return s
        raise ConfigError(f"no scenario {name!r} in this fleet report")

    def payload(self) -> dict:
        return {
            "schema": "alock-fleet-report/1",
            "config": self.config.payload(),
            "rounds": self.rounds,
            "total_schedules": self.total_schedules,
            "scenarios": [s.payload() for s in self.scenarios],
        }

    def to_json_bytes(self) -> bytes:
        return (json.dumps(self.payload(), sort_keys=True, indent=2,
                           ensure_ascii=True) + "\n").encode("utf-8")

    def summary(self) -> str:
        lines = [f"fleet: {self.total_schedules} schedules over "
                 f"{len(self.scenarios)} scenario(s) in {self.rounds} "
                 f"round(s), {self.workers} worker(s), "
                 f"{self.elapsed_s:.1f}s "
                 f"({self.schedules_per_sec:.0f} schedules/sec)"]
        for s in self.scenarios:
            cov = s.coverage
            line = (f"  {s.name}: {s.schedules_run} run "
                    f"({s.random_run} random, {s.mut_run} mutation), "
                    f"{cov.get('prefixes_seen', 0)} novel prefixes")
            if s.first_find is None:
                line += ", no failure found"
            else:
                kind = s.kept[0]["kind"] if s.kept else "?"
                line += (f", first {kind} at schedule {s.first_find} "
                         f"({s.first_find_source})")
                if s.shrink is not None:
                    line += (f", shrunk {s.shrink['start_size']} -> "
                             f"{s.shrink['size']} decisions")
            if s.crashed_cells:
                line += f", {s.crashed_cells} crashed cell(s)"
            lines.append(line)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# the driver
# ---------------------------------------------------------------------------

class _ScenarioState:
    """Parent-side bookkeeping for one scenario's exploration."""

    def __init__(self, name: str, scenario: LockScenario,
                 config: FleetConfig):
        self.name = name
        self.scenario = scenario
        self.report = ScenarioFleetReport(name=name)
        self.coverage = CoverageMap(depth=config.depth)
        self.digests: set[str] = set()
        self.budget_spent = 0        # schedules scheduled (incl. crashed)
        self.next_walk = 0
        self.next_mut = 0
        self.next_position = 0

    def active(self, config: FleetConfig) -> bool:
        if self.budget_spent >= config.budget:
            return False
        if config.stop_on_find and self.report.first_find is not None:
            return False
        return True


def _build_cells(states: "list[_ScenarioState]", config: FleetConfig,
                 next_index: int) -> "list[ExploreCell]":
    """One round's cells, in deterministic order (scenario order, then
    cell order); mutation candidates are consumed here, in that order."""
    cells: list[ExploreCell] = []
    for st in states:
        if not st.active(config):
            continue
        for _ in range(config.cells_per_round):
            n = min(config.cell_size, config.budget - st.budget_spent)
            if n <= 0:
                break
            jobs: list[tuple] = []
            if config.coverage:
                # Mutation slots are position-parity based (every den-th
                # schedule, num of them), not per-cell rounding: at
                # cell_size=1 this still mutates every other schedule —
                # the tightest steer cadence — instead of rounding to 0.
                want = sum(
                    1 for q in range(st.next_position, st.next_position + n)
                    if q % config.mutation_den
                    >= config.mutation_den - config.mutation_num)
                for cand in st.coverage.take(want):
                    jobs.append(("mut", st.next_mut, cand.prefix))
                    st.next_mut += 1
            while len(jobs) < n:
                jobs.append(("random", st.next_walk))
                st.next_walk += 1
            cells.append(ExploreCell(
                index=next_index + len(cells), scenario_name=st.name,
                scenario=st.scenario, seed=config.seed,
                start_position=st.next_position, jobs=tuple(jobs),
                policy=config.policy, change_points=config.change_points,
                horizon=config.horizon, depth=config.depth,
                detail_limit=config.detail_limit))
            st.budget_spent += n
            st.next_position += n
    return cells


def _merge_cell(st: _ScenarioState, cell: ExploreCell, out: CellOut,
                config: FleetConfig) -> None:
    """Fold one cell's records into its scenario state.  Called in
    global cell order — the only order-sensitive step (novelty
    attribution), hence the fixed ordering."""
    rep = st.report
    if not out.ok:
        rep.crashed_cells += 1
        return
    for i, rec in enumerate(out.records):
        position = cell.start_position + i
        rep.schedules_run += 1
        if rec.source == "mut":
            rep.mut_run += 1
        else:
            rep.random_run += 1
        st.digests.add(rec.digest)
        novel = st.coverage.observe(rec.dense, rec.fanouts)
        if config.coverage and novel:
            st.coverage.breed(rec.dense, rec.fanouts, novel)
        if rec.ok:
            rep.ok_count += 1
            continue
        rep.failure_counts[rec.kind] = rep.failure_counts.get(rec.kind, 0) + 1
        if rep.first_find is None or position < rep.first_find:
            rep.first_find = position
            rep.first_find_source = rec.source
        if len(rep.kept) < config.max_kept:
            rep.kept.append({
                "position": position, "kind": rec.kind,
                "detail": rec.detail, "decisions": rec.decisions,
                "digest": rec.digest, "source": rec.source,
            })


def _shrink_and_freeze(st: _ScenarioState, config: FleetConfig) -> None:
    """Turn the scenario's earliest kept failure into a corpus entry."""
    rep = st.report
    if not rep.kept or not config.shrink:
        return
    first = min(rep.kept, key=lambda k: k["position"])
    seed_failure = ScheduleResult(
        ok=False, failure_kind=first["kind"], detail=first["detail"],
        decisions=Decisions.parse(first["decisions"]))
    shrunk = shrink_failure(st.scenario, seed_failure,
                            max_replays=config.shrink_replays)
    confirm = shrunk.result
    rep.shrink = {
        "start_size": shrunk.start_size, "size": shrunk.size,
        "replays_used": shrunk.replays_used,
        "decisions": shrunk.decisions.to_string(),
    }
    rep.entry = CorpusEntry(
        name=st.name, failure_kind=confirm.failure_kind or first["kind"],
        scenario=st.scenario, decisions=shrunk.decisions.to_string(),
        digest=confirm.digest, detail=confirm.detail,
        provenance=(
            ("fleet_seed", config.seed),
            ("found_at_schedule", rep.first_find),
            ("found_by", rep.first_find_source),
            ("shrink_replays", shrunk.replays_used),
            ("start_size", shrunk.start_size),
        ))
    rep.entry_dump = confirm.dump


def run_fleet(config: FleetConfig, *, workers: int = 0,
              executor_factory=None, shell=None,
              on_round: Optional[Callable[[FleetReport], None]] = None
              ) -> FleetReport:
    """Run the exploration fleet described by ``config``.

    Args:
        workers: ``<= 1`` runs in-process (the serial reference path);
            ``N > 1`` shards cells over N worker processes.  Any value
            produces byte-identical canonical output.
        executor_factory / shell: the :mod:`repro.parallel` test seams.
        on_round: progress callback, invoked with the (partially
            filled) report after each merged round.
    """
    states = [_ScenarioState(name, sc, config)
              for name, sc in config.scenarios]
    report = FleetReport(config=config,
                         scenarios=[st.report for st in states],
                         workers=max(1, workers))
    # Wall clock times the operator-facing rate only; it never reaches
    # the canonical payload.
    started = time.perf_counter()  # simlint: ignore[nondet-source]
    next_cell_index = 0
    while True:
        cells = _build_cells(states, config, next_cell_index)
        if not cells:
            break
        next_cell_index += len(cells)
        report.rounds += 1
        outs: dict[int, CellOut] = {}

        def on_chunk_done(idx: int, value, error) -> None:
            chunk_cells = chunks[idx]
            if error is not None or not isinstance(value, (list, tuple)):
                problem = (f"{error!r}" if error is not None
                           else f"bad chunk value {type(value).__name__!r}")
                for cell in chunk_cells:
                    outs[cell.index] = CellOut(
                        index=cell.index, ok=False,
                        error=f"chunk failure: {problem}")
                return
            by_index = {o.index: o for o in value if isinstance(o, CellOut)}
            for cell in chunk_cells:
                outs[cell.index] = by_index.get(cell.index) or CellOut(
                    index=cell.index, ok=False,
                    error="malformed chunk: no record for this cell")

        # one cell per chunk: a cell is already a batch of schedules,
        # so finer chunking buys nothing and coarser hurts stealing.
        chunks = [(cell,) for cell in cells]
        resolve_shell(workers, executor_factory, shell).run_chunks(
            chunks, lambda chunk: (run_explore_chunk, chunk), on_chunk_done)

        by_name = {st.name: st for st in states}
        for cell in cells:                     # global cell order
            _merge_cell(by_name[cell.scenario_name], cell,
                        outs[cell.index], config)
        for st in states:
            st.coverage.rerank()
        if on_round is not None:
            on_round(report)

    for st in states:
        st.report.distinct_executions = len(st.digests)
        st.report.coverage = st.coverage.summary()
        _shrink_and_freeze(st, config)
    report.total_schedules = sum(s.schedules_run for s in report.scenarios)
    report.elapsed_s = time.perf_counter() - started  # simlint: ignore[nondet-source]
    return report


def write_fleet_corpus(report: FleetReport, corpus_dir: str) -> "list[str]":
    """Persist every frozen entry of ``report`` (with its post-mortem
    dump) under ``corpus_dir``; returns the written entry paths."""
    paths = []
    for s in report.scenarios:
        if s.entry is not None:
            paths.append(write_entry(s.entry, corpus_dir, dump=s.entry_dump))
    return paths


# ---------------------------------------------------------------------------
# quality-metric helpers
# ---------------------------------------------------------------------------

def first_find(scenario: LockScenario, budget: int, *, seed: int = 0,
               coverage: bool = True, cell_size: int = 1,
               cells_per_round: int = 1, policy: str = "random",
               name: str = "probe") -> Optional[int]:
    """Schedules-to-first-find for one scenario under one steering mode
    — the quality metric's primitive.  ``cell_size=1`` gives the
    tightest steer cadence (every other schedule can be a mutation bred
    from *all* earlier logs), which is the configuration the committed
    medians in ``benchmarks/baselines/QUALITY_schedcheck.json`` were
    measured at.
    """
    config = FleetConfig(scenarios=((name, scenario),), budget=budget,
                         seed=seed, coverage=coverage, cell_size=cell_size,
                         cells_per_round=cells_per_round, policy=policy,
                         shrink=False)
    return run_fleet(config).scenarios[0].first_find


__all__ = [
    "FAULT_SCENARIOS", "HARDENED_BUGS", "PRESETS", "SEEDED_BUGS",
    "CellOut", "ExploreCell", "FleetConfig", "FleetReport",
    "ScenarioFleetReport", "WalkRecord", "correct_twin", "first_find",
    "run_explore_chunk", "run_fleet", "write_fleet_corpus",
]
