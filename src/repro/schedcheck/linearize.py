"""Wing–Gong linearizability checking with memoization.

The classic algorithm (Wing & Gong, JPDC'93) searches for a total order
of the operations that (a) respects real-time precedence — if op A's
response precedes op B's invoke, A must come first — and (b) is legal
for a sequential model of the object.  The search tries every *minimal*
operation (one no other unlinearized op strictly precedes) as the next
linearization point and recurses.

Plain Wing–Gong is exponential; the standard fix (Lowe, PPoPP'17) is to
memoize configurations ``(set of linearized ops, model state)`` — two
search paths that linearized the same op subset and produced the same
state are interchangeable, and histories from well-locked objects
collapse to near-linear work.

Models are tiny pure classes: ``init()`` → hashable state,
``apply(state, op)`` → ``(legal, next_state)``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.schedcheck.history import Op


class CounterModel:
    """Fetch-and-increment counter — the lock table's guarded counter.

    ``inc`` returns the pre-increment value (the value the critical
    section read); ``read`` returns the current value.
    """

    def init(self) -> int:
        return 0

    def apply(self, state: int, op: Op) -> tuple[bool, int]:
        if op.action == "inc":
            return op.result == state, state + 1
        if op.action == "read":
            return op.result == state, state
        return False, state


class KvModel:
    """Single-key register bucket — the KV store's per-bucket history.

    ``put(v)`` returns None; ``get()`` returns the last put value (or
    ``missing`` before any put).  State is the current value.
    """

    def __init__(self, missing=None):
        self.missing = missing

    def init(self):
        return self.missing

    def apply(self, state, op: Op) -> tuple[bool, object]:
        if op.action == "put":
            return True, op.args[0]
        if op.action == "get":
            return op.result == state, state
        return False, state


def check_linearizable(ops: Sequence[Op], model) -> Optional[str]:
    """None if ``ops`` (one object's completed operations) is
    linearizable under ``model``; else a human-readable refusal naming
    the smallest prefix at which the search got stuck.

    Iterative depth-first search over (remaining ops, state) with a
    memo of visited configurations.
    """

    ops = sorted(ops, key=lambda o: (o.invoke, o.opid))
    n = len(ops)
    if n == 0:
        return None
    ids = {op.opid: i for i, op in enumerate(ops)}
    full_mask = (1 << n) - 1

    # DFS stack of (done_mask, state); memo on the same pair.
    start = (0, model.init())
    stack = [start]
    memo = {start}
    best_done = 0  # deepest linearized count reached, for the error message

    while stack:
        done_mask, state = stack.pop()
        if done_mask == full_mask:
            return None
        remaining = [op for op in ops if not (done_mask >> ids[op.opid]) & 1]
        best_done = max(best_done, n - len(remaining))
        # An op is minimal iff no other remaining op's response precedes
        # its invoke; equivalently invoke <= min(response over remaining).
        min_resp = min(op.response for op in remaining)
        for op in remaining:
            if op.invoke > min_resp:
                break  # remaining is invoke-sorted: no later op is minimal
            legal, next_state = model.apply(state, op)
            if not legal:
                continue
            nxt = (done_mask | (1 << ids[op.opid]), next_state)
            if nxt not in memo:
                memo.add(nxt)
                stack.append(nxt)

    linearized = best_done
    stuck = [op for op in ops][:]
    return (f"history of {n} ops is NOT linearizable: search linearized at "
            f"most {linearized} ops before every extension became illegal "
            f"(first ops: "
            + "; ".join(str(op) for op in stuck[:4])
            + (" ..." if n > 4 else "") + ")")


def check_history(groups: dict[str, Sequence[Op]], model_for) -> list[str]:
    """Check every object's group; returns violation messages.

    Args:
        groups: object name → its completed ops (see
            :meth:`HistoryRecorder.by_object`).
        model_for: callable ``obj_name -> model`` (constant models are
            fine: ``lambda obj: CounterModel()``).
    """
    violations = []
    for obj in sorted(groups):
        msg = check_linearizable(groups[obj], model_for(obj))
        if msg is not None:
            violations.append(f"{obj}: {msg}")
    return violations


__all__ = ["CounterModel", "KvModel", "check_linearizable", "check_history"]
