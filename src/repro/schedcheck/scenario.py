"""Scenario builders: the workloads the explorer drives.

A *scenario* is a recipe that builds a fresh cluster + clients for every
schedule: exploration mutates nothing between runs, it only installs a
different tie-break policy on the new environment.  The standard
:class:`LockScenario` mirrors the lock test-suite's stress harness
(clients doing acquire → guarded increment → release against a lock
table) with the knobs that matter for interleaving coverage: per-client
start stagger, critical-section dwell, think time, and the lock picker.

Anything with a ``build() -> BuiltRun`` method works as a scenario, so
tests can hand the explorer bespoke process soups too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.cluster import Cluster
from repro.common.errors import ConfigError
from repro.faults import FaultPlan
from repro.locktable import DistributedLockTable
from repro.rdma.config import CostModel, FabricConfig, NicConfig, RdmaConfig
from repro.schedcheck.history import HistoryRecorder
from repro.sim.core import Process


def coarse_config() -> RdmaConfig:
    """A tie-friendly cost model for schedule exploration.

    The calibrated CX-3 model uses deliberately unequal constants
    (55/60/95/... ns), so concurrent operations almost never finish at
    the same simulated instant and the tie-break tree the explorer
    permutes is tiny.  Exploration scenarios instead quantize every cost
    to a 100 ns grid: racing operations now *tie* exactly when a real
    machine would have them in flight together, which is what turns
    same-time reordering into genuine race coverage.  Ratios (remote ≈
    20× local) are preserved, so protocol behaviour is unchanged.
    """
    return RdmaConfig(
        nic=NicConfig(tx_service_ns=200.0, rx_service_ns=200.0,
                      atomic_window_ns=200.0, pcie_crossing_ns=100.0,
                      qpc_miss_penalty_ns=400.0,
                      loopback_turnaround_ns=1000.0),
        fabric=FabricConfig(one_way_latency_ns=800.0, jitter_ns=0.0),
        cpu=CostModel(local_read_ns=100.0, local_write_ns=200.0,
                      local_cas_ns=100.0, fence_ns=100.0,
                      spin_recheck_ns=100.0))


@dataclass
class BuiltRun:
    """One freshly-built execution, ready to run under a policy."""

    cluster: Cluster
    processes: list[Process]
    table: Optional[DistributedLockTable] = None
    history: Optional[HistoryRecorder] = None
    expected_ops: int = 0
    deadline_ns: float = 0.0
    #: lock name -> (home_node, local_budget, remote_budget) for the
    #: budget-bound checker (only budgeted locks appear).
    budgets: dict = field(default_factory=dict)

    def validate(self) -> list[str]:
        """Post-run invariant checks (beyond the trace checkers):
        guarded-counter conservation and the Table-1 race audit."""
        problems = []
        if self.table is not None and self.expected_ops:
            try:
                self.table.check_counters(self.expected_ops)
            except AssertionError as exc:
                problems.append(str(exc))
        audit = self.cluster.auditor
        if audit.mode != "off" and audit.violation_count:
            problems.append(
                f"race auditor recorded {audit.violation_count} Table-1 "
                f"violation(s): {audit.violations[0]}")
        return problems


def _pick_single(node, thread, op, table):
    return 0


def _pick_local(node, thread, op, table):
    indices = table.local_indices(node)
    return indices[op % len(indices)]


def _pick_remote(node, thread, op, table):
    indices = table.remote_indices(node)
    return indices[(op + thread) % len(indices)]


def _pick_mixed(node, thread, op, table):
    if op % 2 == 0:
        return _pick_local(node, thread, op, table)
    return _pick_remote(node, thread, op, table)


PICKERS: dict[str, Callable] = {
    "single": _pick_single,
    "local": _pick_local,
    "remote": _pick_remote,
    "mixed": _pick_mixed,
}


@dataclass(frozen=True)
class LockScenario:
    """Closed-loop lock-table clients, one per (node, thread).

    Args:
        lock_kind: registered lock type ("alock", "mcs", "spinlock", ...).
        n_nodes / threads_per_node / n_locks / ops_per_thread: shape.
        pick: lock-choice pattern, one of ``single | local | remote |
            mixed`` (``single`` = everyone on lock 0: maximal logical
            contention and the densest tie-break choice points).
        cs_ns: dwell inside the critical section before the increment.
        think_ns: idle gap between operations.
        stagger_ns: client ``k`` starts at ``k * stagger_ns`` — breaks
            the time-0 symmetry when a scenario needs the default
            schedule to be quiet.
        lock_options: extra lock-factory options as a ``(("k", v), ...)``
            tuple (hashable; e.g. ``(("bug", "lost_wakeup"),)``).
        seed / audit: forwarded to the cluster.
        record_history: attach a :class:`HistoryRecorder` to the table
            (feeds the linearizability checker).
        deadline_ns: sim-time budget; 0 derives a generous bound from
            the shape.  A run with live clients at the deadline is
            reported as a stall (livelock or starvation).
    """

    lock_kind: str = "alock"
    n_nodes: int = 2
    threads_per_node: int = 2
    n_locks: int = 1
    ops_per_thread: int = 4
    pick: str = "single"
    cs_ns: float = 0.0
    think_ns: float = 0.0
    stagger_ns: float = 0.0
    lock_options: tuple = ()
    seed: int = 0
    audit: str = "record"
    record_history: bool = True
    deadline_ns: float = 0.0
    #: quantized cost model (see :func:`coarse_config`); False runs the
    #: calibrated CX-3 model, where same-time ties are rare.
    coarse_time: bool = True
    #: optional fault schedule (verb loss, spikes, crash windows, ...);
    #: fault draws come from the cluster's seeded RNG registry, so a
    #: fault-enabled scenario replays exactly like a fault-free one —
    #: which is what lets the fleet explore interleavings *under*
    #: injected faults.
    faults: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.pick not in PICKERS:
            raise ConfigError(
                f"unknown picker {self.pick!r}; known: {sorted(PICKERS)}")
        if self.ops_per_thread < 1:
            raise ConfigError("ops_per_thread must be >= 1")

    @property
    def n_clients(self) -> int:
        return self.n_nodes * self.threads_per_node

    @property
    def expected_ops(self) -> int:
        return self.n_clients * self.ops_per_thread

    def _auto_deadline(self) -> float:
        per_op = 60_000.0 + 10.0 * (self.cs_ns + self.think_ns)
        return (self.expected_ops * per_op
                + self.n_clients * self.stagger_ns + 1_000_000.0)

    def build(self) -> BuiltRun:
        n_locks = max(self.n_locks, self.n_nodes)
        cluster = Cluster(self.n_nodes, seed=self.seed, audit=self.audit,
                          trace=True, faults=self.faults,
                          config=coarse_config() if self.coarse_time else None)
        table = DistributedLockTable(cluster, n_locks, self.lock_kind,
                                     lock_options=dict(self.lock_options))
        history = None
        if self.record_history:
            history = HistoryRecorder(cluster.env)
            table.attach_history(history)
        picker = PICKERS[self.pick]
        env = cluster.env

        def client(node: int, thread: int, order: int):
            ctx = cluster.thread_ctx(node, thread)
            if self.stagger_ns > 0 and order > 0:
                yield env.timeout(order * self.stagger_ns)
            for op in range(self.ops_per_thread):
                idx = picker(node, thread, op, table)
                # No try/finally release: a client that dies mid-CS must
                # LEAVE the lock held so the failure is observable (the
                # explorer classifies the dead client and the checkers
                # see the unreleased lock); cleanup would mask the bug.
                yield from table.acquire(ctx, idx)  # simlint: ignore[resource-guard]
                if self.cs_ns > 0:
                    yield env.timeout(self.cs_ns)
                yield from table.guarded_increment(ctx, idx)
                yield from table.release(ctx, idx)
                if self.think_ns > 0:
                    yield env.timeout(self.think_ns)

        processes = []
        order = 0
        for node in range(self.n_nodes):
            for thread in range(self.threads_per_node):
                processes.append(env.process(
                    client(node, thread, order),
                    name=f"client-n{node}t{thread}"))
                order += 1

        budgets = {}
        for entry in table.entries:
            lock = entry.lock
            if hasattr(lock, "local_budget"):
                budgets[lock.name] = (lock.home_node, lock.local_budget,
                                      lock.remote_budget)
        return BuiltRun(
            cluster=cluster, processes=processes, table=table,
            history=history, expected_ops=self.expected_ops,
            deadline_ns=self.deadline_ns or self._auto_deadline(),
            budgets=budgets)


__all__ = ["BuiltRun", "LockScenario", "PICKERS"]
