"""Schedule policies: who runs next when several events tie on sim time.

The :class:`~repro.sim.core.Environment` dispatches events in
``(time, seq)`` order; a policy overrides the ``seq`` part of that order
— *only* among events ready at the same simulated instant, so the clock
and every event's timestamp are untouched.  Reordering a tie is exactly
the freedom a real machine has when two CPUs race to the same cache line
in the same nanosecond, which is why exploring these choices exposes
interleaving bugs (lost wakeups, handoff races, victim livelock) that a
fixed insertion order executes past forever.

Policies see the ready list as the raw heap entries ``(time, seq,
event)``, ordered by ascending ``seq``: **index 0 is always the choice
the default scheduler would have made**, so :class:`FifoPolicy`
reproduces un-policied runs bit for bit.

All randomness is drawn from seeded numpy generators via
:func:`repro.common.rng.derive_seed` — a policy seed fully determines
the schedule, across processes and ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.common.errors import ConfigError
from repro.common.rng import derive_seed
from repro.schedcheck.decisions import Decisions
from repro.sim.core import Event, Process, _Echo


#: heap entry shape policies receive: (time, seq, event)
ReadyEntry = "tuple[float, int, Event]"


class SchedulePolicy:
    """Base class: pick the index of the event to dispatch next.

    ``ready`` holds at least two entries, ordered by insertion (``seq``).
    Implementations must be deterministic functions of their constructor
    arguments and the sequence of ``choose`` calls.
    """

    def choose(self, ready: Sequence[tuple]) -> int:
        raise NotImplementedError


class FifoPolicy(SchedulePolicy):
    """The default tie-break, reified: always the oldest ready event.

    Installing this policy must reproduce a policy-less run exactly
    (same trace, same metrics, same final time) — guarded by a
    regression test; it exists so exploration infrastructure can be
    exercised on the baseline schedule.
    """

    def choose(self, ready: Sequence[tuple]) -> int:
        return 0


class RandomWalkPolicy(SchedulePolicy):
    """Uniform random choice among ready events — the simplest explorer.

    Good at shaking out races that need one or two flips anywhere in the
    run; the expected coverage decays for bugs needing a *specific*
    sequence of flips (use :class:`PctPolicy` or exhaustive enumeration
    for those).
    """

    def __init__(self, seed: int):
        self.seed = int(seed)
        self._rng = np.random.default_rng(
            derive_seed(self.seed, "schedcheck", "random-walk"))

    def choose(self, ready: Sequence[tuple]) -> int:
        return int(self._rng.integers(0, len(ready)))


class PctPolicy(SchedulePolicy):
    """PCT-style priority scheduling with random change points.

    Each *task* (the process an event would resume; standalone events
    are their own task) gets a random priority on first sight; every
    choice dispatches the highest-priority ready task.  At ``d - 1``
    pre-drawn change points the winning task's priority drops below all
    others — the mechanism by which PCT covers bugs of depth ``d`` with
    provable probability (Burckhardt et al., ASPLOS'10), adapted here to
    tie-break points rather than every scheduling step.

    Args:
        seed: policy seed (fully determines priorities + change points).
        change_points: how many priority inversions to inject (d - 1).
        horizon: expected number of choice points in a run; change
            points are drawn uniformly from ``[1, horizon]``.
    """

    def __init__(self, seed: int, change_points: int = 3, horizon: int = 500):
        if change_points < 0:
            raise ConfigError(f"change_points must be >= 0, got {change_points}")
        if horizon < 1:
            raise ConfigError(f"horizon must be >= 1, got {horizon}")
        self.seed = int(seed)
        self.change_points = change_points
        self.horizon = horizon
        self._rng = np.random.default_rng(
            derive_seed(self.seed, "schedcheck", "pct", change_points, horizon))
        self._changes = set(
            int(x) for x in self._rng.integers(1, horizon + 1,
                                               size=change_points))
        self._prio: dict[tuple, float] = {}
        self._floor = 0.0          # demoted tasks stack below this
        self._steps = 0

    @staticmethod
    def _task_key(entry: tuple) -> tuple:
        """Stable identity of the task an event resumes: the waiting
        process's pid when there is one, else the event's own seq."""
        _time, seq, event = entry
        if isinstance(event, _Echo):
            callbacks = [event._fn]
        else:
            callbacks = event.callbacks or []
        for cb in callbacks:
            owner = getattr(cb, "__self__", None)
            if isinstance(owner, Process):
                return ("p", owner.pid)
        return ("e", seq)

    def choose(self, ready: Sequence[tuple]) -> int:
        self._steps += 1
        best_idx = 0
        best_prio = -np.inf
        best_key = None
        for i, entry in enumerate(ready):
            key = self._task_key(entry)
            prio = self._prio.get(key)
            if prio is None:
                prio = float(self._rng.random())
                self._prio[key] = prio
            if prio > best_prio:
                best_idx, best_prio, best_key = i, prio, key
        if self._steps in self._changes and best_key is not None:
            # change point: demote the winner below everything seen so far
            self._floor -= 1.0
            self._prio[best_key] = self._floor
        return best_idx


class ReplayPolicy(SchedulePolicy):
    """Re-executes a recorded decision string.

    Choice points are numbered in dispatch order; at point ``k`` the
    policy plays ``decisions[k]`` (0 — the default — for points the
    string does not mention, which is what makes shrunk/truncated
    strings replayable).  Out-of-range choices are clamped to the last
    ready index so edited strings stay executable.

    Both forgiving behaviours are exactly wrong for a *corpus* replay,
    where the decision string is a contract against a specific scenario
    build: if the scenario has drifted under the recording (fewer choice
    points, narrower fanouts), clamping and played-past-the-end defaults
    silently execute a schedule the recording never described.  The
    policy therefore tracks what actually happened — ``consumed`` choice
    points and every ``clamped`` pick — and
    :func:`~repro.schedcheck.explore.replay` with ``strict=True`` turns
    any drift into a distinct ``"stale"`` failure instead of a bogus
    pass/fail verdict.
    """

    def __init__(self, decisions: "Decisions | dict[int, int] | None"):
        if decisions is None:
            decisions = Decisions()
        elif isinstance(decisions, dict):
            decisions = Decisions.from_mapping(decisions)
        self.decisions = decisions
        self._k = 0
        #: recorded (choice_index, wanted, fanout) for every clamped pick
        self.clamped: list[tuple[int, int, int]] = []

    @property
    def consumed(self) -> int:
        """Choice points the replayed run actually reached."""
        return self._k

    def choose(self, ready: Sequence[tuple]) -> int:
        idx = self.decisions.get(self._k)
        if idx >= len(ready):
            self.clamped.append((self._k, idx, len(ready)))
            idx = len(ready) - 1
        self._k += 1
        return idx

    def drift(self) -> "list[str]":
        """Mismatches between the recording and the run just executed:
        empty when the replay was faithful.  Meaningful only after the
        run completes."""
        problems = []
        for k, wanted, fanout in self.clamped:
            problems.append(f"decision {k}:{wanted} clamped to "
                            f"{fanout - 1} (only {fanout} ready)")
        if self.decisions.last_index >= self._k:
            unreached = [f"{k}:{v}" for k, v in self.decisions.items()
                         if k >= self._k]
            problems.append(
                f"run ended after {self._k} choice points, before "
                f"recorded decision(s) {','.join(unreached)}")
        return problems


class PrefixPolicy(SchedulePolicy):
    """Forces a dense decision prefix, then falls back to the default.

    The bounded-exhaustive enumerator drives runs with successively
    longer prefixes; everything past the prefix is index 0 so the run
    completes deterministically.
    """

    def __init__(self, prefix: Sequence[int]):
        self.prefix = tuple(int(x) for x in prefix)
        self._k = 0

    def choose(self, ready: Sequence[tuple]) -> int:
        idx = self.prefix[self._k] if self._k < len(self.prefix) else 0
        self._k += 1
        return min(idx, len(ready) - 1)


class PrefixThenRandomPolicy(SchedulePolicy):
    """Forces a dense decision prefix, then explores randomly.

    The fleet's mutation policy: the prefix navigates to a novel region
    of the tie-break tree (a sibling of an executed schedule — see
    :mod:`repro.schedcheck.coverage`), the seeded random tail explores
    inside it.  Unlike :class:`PrefixPolicy`, whose default tail makes
    each prefix worth exactly one schedule, the random tail lets one
    near-miss prefix seed arbitrarily many distinct deep schedules.
    """

    def __init__(self, prefix: Sequence[int], seed: int):
        self.prefix = tuple(int(x) for x in prefix)
        self.seed = int(seed)
        self._rng = np.random.default_rng(
            derive_seed(self.seed, "schedcheck", "prefix-tail"))
        self._k = 0

    def choose(self, ready: Sequence[tuple]) -> int:
        if self._k < len(self.prefix):
            idx = min(self.prefix[self._k], len(ready) - 1)
        else:
            idx = int(self._rng.integers(0, len(ready)))
        self._k += 1
        return idx


def make_policy(kind: str, seed: int, *,
                change_points: int = 3, horizon: int = 500) -> SchedulePolicy:
    """Policy factory used by the explorer and the CLI."""
    if kind == "fifo":
        return FifoPolicy()
    if kind == "random":
        return RandomWalkPolicy(seed)
    if kind == "pct":
        return PctPolicy(seed, change_points=change_points, horizon=horizon)
    raise ConfigError(f"unknown schedule policy {kind!r}; "
                      f"known: fifo, random, pct")


__all__ = [
    "SchedulePolicy", "FifoPolicy", "RandomWalkPolicy", "PctPolicy",
    "ReplayPolicy", "PrefixPolicy", "PrefixThenRandomPolicy", "make_policy",
]
