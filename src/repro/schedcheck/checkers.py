"""Execution checkers: invariants evaluated over one finished run.

Three families, all cheap single passes:

* **Critical-section overlap** — replays the ``cs.enter``/``cs.exit``
  trace per lock and rejects any moment with two holders.  This is a
  *trace-level* cross-check of the oracle in
  :meth:`repro.locks.base.DistributedLock._note_acquired` (which raises
  inside the acquiring process) and of the
  :class:`~repro.memory.races.RaceAuditor` (which watches memory words):
  three observers at three layers that must agree a schedule is clean.

* **Budget-bound conformance** — ALock's cohort-yield discipline: a
  cohort may take at most ``budget`` consecutive critical sections
  between two ``peterson.acquired`` events of its own (§5/Fig. 4 of the
  paper).  More means a budget handoff skipped the decrement or a leader
  skipped the global competition.

* **Linearizability** — delegates the recorded operation history to the
  Wing–Gong checker in :mod:`repro.schedcheck.linearize`.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.common.trace import TraceEvent
from repro.schedcheck.history import HistoryRecorder
from repro.schedcheck.linearize import CounterModel, KvModel, check_history


def _lock_of(detail: str) -> str:
    """Lock name from a cs.*/mcs.*/peterson.* detail string (the name is
    always the first whitespace-separated token)."""
    return detail.split(" ", 1)[0]


def _actor_node(actor: str) -> int:
    """Node id from a ``t{j}@n{i}`` actor string (-1 if unparseable)."""
    _, sep, node = actor.rpartition("@n")
    if not sep:
        return -1
    try:
        return int(node)
    except ValueError:
        return -1


def check_cs_overlap(trace: Iterable[TraceEvent]) -> list[str]:
    """Violations of mutual exclusion visible in the trace: a
    ``cs.enter`` while another actor holds the same lock, or a
    ``cs.exit`` by a non-holder."""
    holders: dict[str, tuple[str, float]] = {}
    violations = []
    for ev in trace:
        if ev.kind == "cs.enter":
            lock = _lock_of(ev.detail)
            held = holders.get(lock)
            if held is not None:
                violations.append(
                    f"[{ev.time:.1f} ns] {ev.actor} entered CS of {lock} "
                    f"while {held[0]} held it (since {held[1]:.1f} ns)")
            else:
                holders[lock] = (ev.actor, ev.time)
        elif ev.kind == "cs.exit":
            lock = _lock_of(ev.detail)
            held = holders.get(lock)
            if held is None or held[0] != ev.actor:
                violations.append(
                    f"[{ev.time:.1f} ns] {ev.actor} exited CS of {lock} "
                    f"without being its recorded holder "
                    f"(holder: {held[0] if held else 'nobody'})")
            else:
                del holders[lock]
    return violations


def check_budget_bounds(trace: Iterable[TraceEvent],
                        budgets: dict[str, tuple[int, int, int]]) -> list[str]:
    """Violations of the cohort-budget bound.

    Args:
        trace: the run's protocol trace.
        budgets: lock name -> (home_node, local_budget, remote_budget);
            locks absent from the map are ignored (non-budgeted kinds).
    """
    violations = []
    # (lock, cohort) -> consecutive CS entries since that cohort's last
    # peterson.acquired (i.e. since it last won the global competition).
    streak: dict[tuple[str, str], int] = {}
    for ev in trace:
        if ev.kind == "peterson.acquired":
            lock = _lock_of(ev.detail)
            if lock not in budgets:
                continue
            cohort = "local" if "cohort=LOCAL" in ev.detail else "remote"
            streak[(lock, cohort)] = 0
        elif ev.kind == "cs.enter":
            lock = _lock_of(ev.detail)
            info = budgets.get(lock)
            if info is None:
                continue
            home, local_budget, remote_budget = info
            local = _actor_node(ev.actor) == home
            cohort = "local" if local else "remote"
            budget = local_budget if local else remote_budget
            key = (lock, cohort)
            streak[key] = streak.get(key, 0) + 1
            if streak[key] > budget:
                violations.append(
                    f"[{ev.time:.1f} ns] {cohort} cohort of {lock} took "
                    f"{streak[key]} consecutive critical sections "
                    f"(budget {budget}) without re-winning the global "
                    f"competition — budget handoff discipline violated "
                    f"(entered by {ev.actor})")
    return violations


def check_linearizability(history: Optional[HistoryRecorder]) -> list[str]:
    """Linearizability of the recorded operation history, per object.

    Object models are chosen by name prefix: ``counter[...]`` objects
    use :class:`CounterModel` (lock-table guarded counters),
    ``kv[...]`` objects use :class:`KvModel` with 0 as the
    missing-value default (KV records start zeroed).
    """
    if history is None or not history.ops:
        return []

    def model_for(obj: str):
        if obj.startswith("kv["):
            return KvModel(missing=0)
        return CounterModel()

    return check_history(history.by_object(), model_for)


def run_all_checkers(trace: Iterable[TraceEvent],
                     budgets: dict[str, tuple[int, int, int]],
                     history: Optional[HistoryRecorder]) -> list[str]:
    """Every checker over one finished run; returns all violations."""
    events = list(trace)
    problems = check_cs_overlap(events)
    problems.extend(check_budget_bounds(events, budgets))
    problems.extend(check_linearizability(history))
    return problems


__all__ = [
    "check_cs_overlap", "check_budget_bounds", "check_linearizability",
    "run_all_checkers",
]
