"""Delta-debugging shrinker for failing decision strings.

A random or PCT schedule that exposes a bug typically carries dozens of
non-default tie-break decisions, almost all irrelevant.  The shrinker
minimizes the *sparse* decision string (Zeller's ddmin over its entries,
then a per-entry value-lowering pass) under the predicate "replaying it
still produces the same failure kind".  Because entries are keyed by
absolute choice-point index, removing one leaves the rest attached to
the same points — the run is identical up to the first remaining entry,
which is what makes removal chunks mostly independent.

The result is a counterexample small enough to read: each surviving
entry is one forced race outcome, and the rendered trace around those
points is the bug's story.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.schedcheck.decisions import Decisions
from repro.schedcheck.explore import ScheduleResult, replay


@dataclass
class ShrinkResult:
    """Outcome of a shrink: the minimized string and its replay."""

    decisions: Decisions
    result: ScheduleResult
    replays_used: int = 0
    start_size: int = 0
    #: (size, decision string) after every successful reduction
    steps: list = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.decisions)

    def summary(self) -> str:
        return (f"shrunk {self.start_size} -> {self.size} decisions in "
                f"{self.replays_used} replays: "
                f"{self.decisions.to_string() or '(default schedule)'}")


def shrink_failure(scenario, failure: ScheduleResult,
                   max_replays: int = 400) -> ShrinkResult:
    """Minimize ``failure.decisions`` while preserving its failure kind.

    Args:
        scenario: the scenario the failure came from (rebuilt per replay).
        failure: a non-ok :class:`ScheduleResult`.
        max_replays: replay budget; shrinking stops early when spent.

    Returns the smallest failing string found (1-minimal w.r.t. entry
    removal when the budget sufficed).
    """
    if failure.ok:
        raise ValueError("cannot shrink a passing schedule")
    target_kind = failure.failure_kind

    state = {"replays": 0, "result": failure}

    def still_fails(candidate: Decisions) -> bool:
        if state["replays"] >= max_replays:
            return False
        state["replays"] += 1
        r = replay(scenario, candidate)
        if not r.ok and r.failure_kind == target_kind:
            state["result"] = r
            return True
        return False

    current = failure.decisions
    steps = [(len(current), current.to_string())]

    # Phase 0: if the failure does not need any intervention (the
    # scenario fails under the default schedule too), the answer is the
    # empty string.
    if current and still_fails(Decisions()):
        current = Decisions()
        steps.append((0, ""))
        return ShrinkResult(decisions=current, result=state["result"],
                            replays_used=state["replays"],
                            start_size=len(failure.decisions), steps=steps)

    # Phase 1: ddmin over the entry set.  Try removing complement of
    # each chunk (i.e. keeping only the chunk), then removing each chunk;
    # on success restart at coarse granularity, else refine.
    n_chunks = 2
    while len(current) > 1 and state["replays"] < max_replays:
        keys = [k for k, _v in current.items()]
        n_chunks = min(n_chunks, len(keys))
        chunk_size = (len(keys) + n_chunks - 1) // n_chunks
        chunks = [keys[i:i + chunk_size]
                  for i in range(0, len(keys), chunk_size)]
        reduced = False
        # try each chunk alone (fast path to tiny strings)
        for chunk in chunks:
            if len(chunk) == len(keys):
                continue
            candidate = current.without(k for k in keys if k not in chunk)
            if still_fails(candidate):
                current = candidate
                steps.append((len(current), current.to_string()))
                n_chunks = 2
                reduced = True
                break
        if reduced:
            continue
        # try deleting each chunk
        for chunk in chunks:
            if len(chunk) == len(keys):
                continue
            candidate = current.without(chunk)
            if still_fails(candidate):
                current = candidate
                steps.append((len(current), current.to_string()))
                n_chunks = max(2, n_chunks - 1)
                reduced = True
                break
        if reduced:
            continue
        if n_chunks >= len(keys):
            break  # 1-minimal
        n_chunks = min(len(keys), 2 * n_chunks)

    # Phase 2: lower surviving values toward the default (a forced pick
    # of ready index 1 reads better than index 7; try 1, then halves).
    for key, value in list(current.items()):
        if state["replays"] >= max_replays:
            break
        for smaller in sorted({1, value // 2}):
            if smaller >= value or smaller < 1:
                continue
            candidate = current.replace(key, smaller)
            if still_fails(candidate):
                current = candidate
                steps.append((len(current), current.to_string()))
                break

    return ShrinkResult(decisions=current, result=state["result"],
                        replays_used=state["replays"],
                        start_size=len(failure.decisions), steps=steps)


__all__ = ["ShrinkResult", "shrink_failure"]
