"""Operation histories for linearizability checking.

A history is the invoke/response record of operations on shared objects
(guarded counters of the lock table, KV-store buckets).  The recorder is
an opt-in hook: the data-structure layers call ``invoke``/``respond``
only when a recorder is attached, so the default path stays one branch.

Times come from the simulation clock: ``invoke`` is sampled when the
operation's generator starts touching shared state, ``response`` when
its result is determined.  Two operations are *concurrent* iff their
``[invoke, response]`` intervals overlap — the input relation of the
Wing–Gong checker in :mod:`repro.schedcheck.linearize`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.sim.core import Environment


@dataclass(frozen=True)
class Op:
    """One completed operation against one object."""

    opid: int
    actor: str
    obj: str
    action: str
    args: tuple
    result: Any
    invoke: float
    response: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        arg_s = ",".join(str(a) for a in self.args)
        return (f"[{self.invoke:>10.1f}..{self.response:>10.1f}] {self.actor:<8} "
                f"{self.obj}.{self.action}({arg_s}) -> {self.result}")


class HistoryRecorder:
    """Collects invoke/response pairs from instrumented data structures.

    Pending operations (invoked, never responded — e.g. a client that
    died mid-operation) are kept separately; the checker treats them as
    possibly-not-taken-effect and excludes them (documented limitation:
    a pending op whose effect *was* observed by a completed op will fail
    the check, which is the conservative direction for a test oracle).
    """

    def __init__(self, env: Environment):
        self.env = env
        self._next_id = 1
        self._pending: dict[int, tuple[str, str, str, tuple, float]] = {}
        self.ops: list[Op] = []

    def invoke(self, actor: str, obj: str, action: str, args: tuple = ()) -> int:
        opid = self._next_id
        self._next_id += 1
        self._pending[opid] = (actor, obj, action, tuple(args), self.env.now)
        return opid

    def respond(self, opid: int, result: Any = None) -> None:
        actor, obj, action, args, invoked = self._pending.pop(opid)
        self.ops.append(Op(opid, actor, obj, action, args, result,
                           invoked, self.env.now))

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def by_object(self) -> dict[str, list[Op]]:
        """Completed ops grouped per object, each group in invoke order.
        Objects are independent linearizability domains (one lock-table
        counter, one KV bucket), checked separately."""
        groups: dict[str, list[Op]] = {}
        for op in self.ops:
            groups.setdefault(op.obj, []).append(op)
        for ops in groups.values():
            ops.sort(key=lambda o: (o.invoke, o.opid))
        return groups


__all__ = ["Op", "HistoryRecorder"]
