"""The counterexample corpus: every bug ever found, forever replayable.

A *corpus entry* freezes one shrunk failing schedule as plain JSON
(schema ``alock-corpus/1``): the complete scenario recipe, the minimized
sparse decision string, the failure kind, the failing execution's
digest, and a relative reference to the post-mortem dump captured at
the moment of failure.  Entries committed under
``tests/schedcheck/corpus/`` become tier-1 regression tests — see
``tests/schedcheck/test_corpus_replay.py`` — replayed in strict mode so
a scenario that drifts under a recording is reported as *stale* (with a
re-shrink hint) rather than silently replaying a different schedule.

Files are content-addressed: the filename embeds a digest of the
canonical entry JSON, so identical failures collapse, concurrent fleet
workers never collide, and any edit to a committed entry is visible as
a name/content mismatch.  Serialization is the repo-wide canonical
form (sorted keys, fixed separators, trailing newline) — byte-identical
across worker counts and ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, fields
from typing import Optional

from repro.common.errors import ConfigError
from repro.faults.plan import CrashWindow, FaultPlan
from repro.schedcheck.explore import ScheduleResult, replay
from repro.schedcheck.scenario import LockScenario

SCHEMA = "alock-corpus/1"

#: subdirectory (of the corpus dir) holding referenced post-mortem dumps
DUMPS_SUBDIR = "dumps"


# -- scenario (de)serialization -----------------------------------------

def scenario_payload(scenario: LockScenario) -> dict:
    """A :class:`LockScenario` as a JSON-safe dict (round-trips through
    :func:`scenario_from_payload`)."""
    payload: dict = {}
    for f in fields(scenario):
        value = getattr(scenario, f.name)
        if f.name == "lock_options":
            payload[f.name] = [[k, v] for k, v in value]
        elif f.name == "faults":
            payload[f.name] = None if value is None else _faults_payload(value)
        else:
            payload[f.name] = value
    return payload


def _faults_payload(plan: FaultPlan) -> dict:
    payload: dict = {}
    for f in fields(plan):
        value = getattr(plan, f.name)
        if f.name == "crash_windows":
            payload[f.name] = [[w.node, w.start_ns, w.end_ns] for w in value]
        else:
            payload[f.name] = value
    return payload


def scenario_from_payload(payload: dict) -> LockScenario:
    kwargs = dict(payload)
    kwargs["lock_options"] = tuple(
        (k, v) for k, v in kwargs.get("lock_options", []))
    faults = kwargs.get("faults")
    if faults is not None:
        fkwargs = dict(faults)
        fkwargs["crash_windows"] = tuple(
            CrashWindow(node=n, start_ns=s, end_ns=e)
            for n, s, e in fkwargs.get("crash_windows", []))
        kwargs["faults"] = FaultPlan(**fkwargs)
    return LockScenario(**kwargs)


def scenario_digest(scenario: LockScenario) -> str:
    """Content digest of the scenario recipe itself (stable across
    processes; independent of where the entry file lives)."""
    blob = json.dumps(scenario_payload(scenario), sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    return hashlib.blake2b(blob, digest_size=8).hexdigest()


# -- entries ------------------------------------------------------------

@dataclass(frozen=True)
class CorpusEntry:
    """One shrunk counterexample, ready to replay.

    Attributes:
        name: human label, usually the seeded-bug or scenario name.
        failure_kind: the taxonomy tag the replay must reproduce
            (``deadlock`` / ``stall`` / ``exception`` / ``checker``).
        scenario: the complete scenario recipe.
        decisions: the minimized sparse decision string.
        digest: execution digest of the confirming replay — strict
            replay must land on *exactly* this execution.
        detail: the failure's one-line detail at capture time.
        dump_ref: corpus-dir-relative path of the post-mortem dump
            captured from the confirming replay (None when the failure
            produced no dump).
        provenance: how the entry was found — schedules spent, fleet
            seed, shrink stats.  Informational; not part of identity.
    """

    name: str
    failure_kind: str
    scenario: LockScenario
    decisions: str
    digest: str
    detail: str = ""
    dump_ref: Optional[str] = None
    provenance: tuple = ()

    def payload(self) -> dict:
        return {
            "schema": SCHEMA,
            "name": self.name,
            "failure_kind": self.failure_kind,
            "scenario": scenario_payload(self.scenario),
            "scenario_digest": scenario_digest(self.scenario),
            "decisions": self.decisions,
            "digest": self.digest,
            "detail": self.detail,
            "dump_ref": self.dump_ref,
            "provenance": {k: v for k, v in self.provenance},
        }

    def entry_digest(self) -> str:
        """Content address: digest of the identity fields (everything
        except the dump reference, whose name embeds this digest)."""
        payload = self.payload()
        del payload["dump_ref"]
        del payload["provenance"]
        blob = json.dumps(payload, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        return hashlib.blake2b(blob, digest_size=8).hexdigest()

    def stem(self) -> str:
        return f"{self.name}-{self.failure_kind}-{self.entry_digest()}"


def entry_from_payload(payload: dict) -> CorpusEntry:
    schema = payload.get("schema")
    if schema != SCHEMA:
        raise ConfigError(f"unknown corpus schema {schema!r}; "
                          f"expected {SCHEMA!r}")
    return CorpusEntry(
        name=payload["name"],
        failure_kind=payload["failure_kind"],
        scenario=scenario_from_payload(payload["scenario"]),
        decisions=payload["decisions"],
        digest=payload["digest"],
        detail=payload.get("detail", ""),
        dump_ref=payload.get("dump_ref"),
        provenance=tuple(sorted(payload.get("provenance", {}).items())))


# -- store --------------------------------------------------------------

def entry_json(entry: CorpusEntry) -> str:
    """Canonical committed form: sorted keys, 2-space indent (the file
    is reviewed by humans), trailing newline."""
    return json.dumps(entry.payload(), sort_keys=True, indent=2,
                      ensure_ascii=True) + "\n"


def write_entry(entry: CorpusEntry, corpus_dir: str,
                dump: Optional[str] = None) -> str:
    """Persist ``entry`` (and its dump, when given) under ``corpus_dir``.

    Returns the entry file's path.  Writing is atomic and idempotent:
    the same entry always produces the same bytes at the same name, so
    concurrent writers and re-runs collapse.
    """
    stem = entry.stem()
    if dump is not None:
        dump_ref = os.path.join(DUMPS_SUBDIR, f"{stem}.dump.json")
        entry = CorpusEntry(**{**_entry_kwargs(entry), "dump_ref": dump_ref})
        dump_path = os.path.join(corpus_dir, dump_ref)
        os.makedirs(os.path.dirname(dump_path), exist_ok=True)
        _atomic_write(dump_path, dump if dump.endswith("\n") else dump + "\n")
    os.makedirs(corpus_dir, exist_ok=True)
    path = os.path.join(corpus_dir, f"{stem}.json")
    _atomic_write(path, entry_json(entry))
    return path


def _entry_kwargs(entry: CorpusEntry) -> dict:
    return {f.name: getattr(entry, f.name) for f in fields(entry)}


def _atomic_write(path: str, text: str) -> None:
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
    os.replace(tmp, path)


def load_entry(path: str) -> CorpusEntry:
    with open(path, encoding="utf-8") as fh:
        return entry_from_payload(json.load(fh))


def load_corpus(corpus_dir: str) -> list[tuple[str, CorpusEntry]]:
    """Every entry in ``corpus_dir``, as ``(path, entry)`` sorted by
    filename.  Missing directory = empty corpus."""
    if not os.path.isdir(corpus_dir):
        return []
    out = []
    for fname in sorted(os.listdir(corpus_dir)):
        if fname.endswith(".json"):
            path = os.path.join(corpus_dir, fname)
            out.append((path, load_entry(path)))
    return out


def load_dump(corpus_dir: str, entry: CorpusEntry) -> Optional[str]:
    """The referenced post-mortem dump's text, if present on disk."""
    if entry.dump_ref is None:
        return None
    path = os.path.join(corpus_dir, entry.dump_ref)
    if not os.path.exists(path):
        return None
    with open(path, encoding="utf-8") as fh:
        return fh.read()


# -- replay -------------------------------------------------------------

def check_entry(entry: CorpusEntry) -> tuple[str, ScheduleResult]:
    """Strict-replay ``entry`` against the current code.

    Returns ``(status, result)``:

    * ``"reproduced"`` — the replay failed with the recorded kind *and*
      landed on the recorded execution digest (byte-identical replay);
    * ``"stale"`` — the scenario drifted under the recording (see
      :func:`~repro.schedcheck.explore.replay` strict mode); the entry
      needs re-finding and re-shrinking, not debugging;
    * ``"passed"`` — the schedule completed cleanly (the bug is gone —
      expected when replaying against fixed code);
    * ``"mismatch"`` — it failed, faithfully, but differently than
      recorded (kind or digest changed): the code under the scenario
      has materially changed and the entry needs review.
    """
    result = replay(entry.scenario, entry.decisions, strict=True)
    if result.failure_kind == "stale":
        return "stale", result
    if result.ok:
        return "passed", result
    if (result.failure_kind == entry.failure_kind
            and result.digest == entry.digest):
        return "reproduced", result
    return "mismatch", result


__all__ = [
    "SCHEMA", "DUMPS_SUBDIR", "CorpusEntry", "check_entry", "entry_json",
    "entry_from_payload", "load_corpus", "load_dump", "load_entry",
    "scenario_digest", "scenario_from_payload", "scenario_payload",
    "write_entry",
]
