"""ALock reproduction: asymmetric lock primitive for RDMA systems.

Reproduction of *ALock: Asymmetric Lock Primitive for RDMA Systems*
(Baran, Nelson-Slivon, Tseng, Palmieri — SPAA 2024) on a deterministic
discrete-event simulation of an RDMA cluster.

Quick start::

    from repro import Cluster, ALock

    cluster = Cluster(n_nodes=2)
    lock = ALock(cluster, home_node=0)
    ctx = cluster.thread_ctx(node_id=0, thread_id=0)

    def client():
        yield from lock.lock(ctx)     # local access: zero RDMA verbs
        # ... critical section ...
        yield from lock.unlock(ctx)

    cluster.env.process(client())
    cluster.run()

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.sim` — discrete-event engine
* :mod:`repro.memory` — RDMA-registered memory + Table-1 race auditor
* :mod:`repro.rdma` — NIC / QPC-cache / fabric / verbs model
* :mod:`repro.cluster` — nodes and thread contexts
* :mod:`repro.locks` — ALock + spinlock and MCS baselines
* :mod:`repro.locktable` — the evaluation application
* :mod:`repro.faults` — fault plans, injector, retry policy
* :mod:`repro.workload` — workload specs, runner, metrics
* :mod:`repro.verification` — explicit-state checker for the TLA+ spec
* :mod:`repro.experiments` — one module per paper figure/table
"""

from repro.cluster import Cluster, ThreadContext
from repro.faults import CrashWindow, FaultPlan
from repro.locks import ALock, RdmaMcsLock, RdmaSpinlock, make_lock
from repro.kvstore import KVConfig, ShardedKVStore
from repro.locktable import DistributedLockTable
from repro.rdma import CostModel, FabricConfig, NicConfig, RdmaConfig
from repro.workload import RunResult, WorkloadSpec, run_workload

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "ThreadContext",
    "ALock",
    "RdmaSpinlock",
    "RdmaMcsLock",
    "make_lock",
    "DistributedLockTable",
    "FaultPlan",
    "CrashWindow",
    "ShardedKVStore",
    "KVConfig",
    "WorkloadSpec",
    "RunResult",
    "run_workload",
    "RdmaConfig",
    "NicConfig",
    "FabricConfig",
    "CostModel",
    "__version__",
]
