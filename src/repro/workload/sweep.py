"""Parameter-sweep helpers over WorkloadSpec.

The experiment modules loop by hand for precise control; downstream
users usually want the one-liner: vary an axis (or a grid of axes),
run each point, and collect a metric.  All points derive from one base
spec, so every run shares the seed discipline and stays reproducible.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.workload.metrics import RunResult
from repro.workload.runner import run_workload
from repro.workload.spec import WorkloadSpec

Metric = Callable[[RunResult], float]


def throughput_metric(result: RunResult) -> float:
    return result.throughput_ops_per_sec


def p99_metric(result: RunResult) -> float:
    return result.latency.p99


@dataclass
class SweepResult:
    """Outcome of a sweep: points in run order."""

    axes: tuple[str, ...]
    points: list[dict] = field(default_factory=list)

    def column(self, key: str) -> list:
        return [p[key] for p in self.points]

    def series_by(self, group_axis: str, x_axis: str,
                  value_key: str = "metric") -> dict[Any, tuple[list, list]]:
        """Regroup points into ``{group: (xs, ys)}`` for plotting."""
        series: dict[Any, tuple[list, list]] = {}
        for p in self.points:
            xs, ys = series.setdefault(p[group_axis], ([], []))
            xs.append(p[x_axis])
            ys.append(p[value_key])
        return series

    def best(self, maximize: bool = True) -> dict:
        chooser = max if maximize else min
        return chooser(self.points, key=lambda p: p["metric"])


def sweep(base: WorkloadSpec, axis: str, values: Sequence,
          metric: Metric = throughput_metric, **run_kwargs) -> SweepResult:
    """Run ``base`` once per value of one spec field.

    >>> sweep(spec, "threads_per_node", [1, 2, 4]).column("metric")
    """
    result = SweepResult(axes=(axis,))
    for value in values:
        run = run_workload(base.with_(**{axis: value}), **run_kwargs)
        result.points.append({axis: value, "metric": metric(run),
                              "result": run})
    return result


def grid(base: WorkloadSpec, metric: Metric = throughput_metric,
         **axes: Sequence) -> SweepResult:
    """Cartesian-product sweep over several spec fields.

    >>> grid(spec, lock_kind=["alock", "mcs"], locality_pct=[85, 95])
    """
    names = tuple(axes)
    result = SweepResult(axes=names)
    for combo in itertools.product(*(axes[n] for n in names)):
        overrides = dict(zip(names, combo))
        run = run_workload(base.with_(**overrides))
        point = dict(overrides)
        point["metric"] = metric(run)
        point["result"] = run
        result.points.append(point)
    return result
