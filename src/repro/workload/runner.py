"""Closed-loop workload execution.

Builds the cluster and lock table from a :class:`WorkloadSpec`, spawns
one client process per (node, thread), runs the simulation, and collects
the :class:`RunResult`.

Count mode (``ops_per_thread > 0``) runs every client to completion and
verifies the guarded counters when ``cs_counter`` is on.  Duration mode
runs the clock to ``warmup_ns + measure_ns`` and counts the operations
that completed inside the window — the paper's throughput methodology.
"""

from __future__ import annotations

import numpy as np

from repro.cluster import Cluster
from repro.common.errors import SimulationError, VerbTimeout
from repro.locktable import DistributedLockTable
from repro.obs import ObsConfig
from repro.obs import postmortem
from repro.sim.core import Timeout
from repro.obs import capture as obs_capture
from repro.workload.generator import LockPicker
from repro.workload.metrics import RunResult
from repro.workload.spec import WorkloadSpec


def build_cluster(spec: WorkloadSpec, **cluster_kwargs) -> tuple[Cluster, DistributedLockTable]:
    """Construct the cluster + lock table for a spec (exposed for tests
    and custom harnesses)."""
    cluster_kwargs.setdefault("faults", spec.faults)
    cluster = Cluster(spec.n_nodes, seed=spec.seed, audit=spec.audit,
                      **cluster_kwargs)
    lease_ns = spec.faults.lease_ns if spec.faults is not None else 0.0
    table = DistributedLockTable(cluster, spec.n_locks, spec.lock_kind,
                                 lock_options=spec.options_dict,
                                 lease_ns=lease_ns)
    return cluster, table


def run_workload(spec: WorkloadSpec, *, obs: "ObsConfig | None" = None,
                 label: str = "", **cluster_kwargs) -> RunResult:
    """Execute one workload run; deterministic for a given spec.

    Args:
        obs: observability config for the run's cluster.  When None, an
            active :class:`~repro.obs.capture.ObsCapture` (the CLI's
            ``--trace-out``/``--metrics-out`` seam) supplies one; when a
            capture is active the run's spans + metrics snapshot are also
            appended to it under ``label``.
        label: capture label; defaults to a spec-derived one.
    """
    active_capture = obs_capture.active()
    if obs is None and active_capture is not None:
        obs = active_capture.config
    if obs is not None:
        cluster_kwargs.setdefault("obs", obs)
    cluster, table = build_cluster(spec, **cluster_kwargs)
    env = cluster.env
    duration_mode = spec.ops_per_thread == 0
    window_start = spec.warmup_ns
    window_end = spec.warmup_ns + spec.measure_ns

    latencies: list[float] = []
    local_flags: list[bool] = []
    per_thread_ops: dict[tuple[int, int], int] = {}
    completed = {"ops": 0, "cs_increments": 0, "aborted_clients": 0,
                 "injected_cs_stalls": 0}
    injector = cluster.fault_injector

    def client(node: int, thread: int):
        ctx = cluster.thread_ctx(node, thread)
        picker = LockPicker(
            spec, node, thread,
            table.local_indices(node), table.remote_indices(node),
            cluster.rng.get("workload", node, thread))
        # Hot-loop hoists: the table/spec fields are immutable for the
        # run, and the leaseless path can drive the lock generator
        # directly — table.acquire/release would only delegate, and their
        # frames are paid on *every resume* of the lock protocol below.
        entries = table.entries
        leased = table.lease_ns > 0
        ops_cap = spec.ops_per_thread
        cs_counter, cs_ns, think_ns = spec.cs_counter, spec.cs_ns, spec.think_ns
        ops_done = 0
        while duration_mode or ops_done < ops_cap:
            idx = picker.next_lock()
            entry = entries[idx]
            is_local = entry.home_node == node
            start = env.now
            try:
                # A VerbTimeout below aborts this client *without* a
                # release: it models a crashed holder, which is exactly
                # the stall the locktable's lease monitor must detect
                # (degraded-entry reporting), so no cleanup by design.
                if leased:
                    yield from table.acquire(ctx, idx)  # simlint: ignore[resource-guard]
                else:
                    yield from entry.lock.lock(ctx)
                if injector is not None:
                    # Fault layer: the holder stalls inside its CS (GC
                    # pause, preemption) — what the lease monitor catches.
                    stall_ns = injector.holder_stall(node, thread)
                    if stall_ns > 0:
                        completed["injected_cs_stalls"] += 1
                        yield Timeout(env, stall_ns)
                if cs_counter:
                    yield from table.guarded_increment(ctx, idx)
                    completed["cs_increments"] += 1
                if cs_ns > 0:
                    yield Timeout(env, cs_ns)
                yield from entry.lock.unlock(ctx)
            except VerbTimeout:
                # The lock's home partition stayed unreachable past the
                # retry budget (e.g. a long crash window): this client
                # cannot safely continue against that queue.  Record the
                # abort and retire; every other client keeps running.
                completed["aborted_clients"] += 1
                break
            end = env.now
            ops_done += 1
            completed["ops"] += 1
            if duration_mode:
                if window_start <= end < window_end:
                    latencies.append(end - start)
                    local_flags.append(is_local)
                    key = (node, thread)
                    per_thread_ops[key] = per_thread_ops.get(key, 0) + 1
                if end >= window_end:
                    break
            else:
                latencies.append(end - start)
                local_flags.append(is_local)
            if think_ns > 0:
                yield Timeout(env, think_ns)
        if not duration_mode:
            per_thread_ops[(node, thread)] = ops_done

    procs = []
    for node in range(spec.n_nodes):
        for thread in range(spec.threads_per_node):
            procs.append((node, thread, env.process(
                client(node, thread), name=f"client-n{node}t{thread}")))

    if duration_mode:
        env.run(until=window_end)
        # Clients that completed an op at/after window_end returned; any
        # still blocked mid-operation are simply abandoned with the run.
        measured = len(latencies)
        window = spec.measure_ns
    else:
        env.run()
        stuck = [p for _n, _t, p in procs if p.is_alive]
        if stuck:
            # The schedule drained with clients parked: simulated
            # deadlock.  describe_alive names the watched word of each
            # parked client (via the region label registry).
            raise postmortem.attach(
                SimulationError(
                    f"{len(stuck)}/{len(procs)} clients deadlocked: "
                    + env.describe_alive()),
                cluster, reason="deadlock", detail=env.describe_alive(),
                table=table)
        for node, thread, p in procs:
            if not p.ok:
                raise postmortem.attach(
                    SimulationError(
                        f"client n{node}t{thread} failed: {p.value!r}"),
                    cluster, reason="exception",
                    detail=f"client n{node}t{thread}: {p.value!r}",
                    table=table) from (
                        p.value if isinstance(p.value, BaseException) else None)
        measured = completed["ops"]
        window = env.now
        if spec.cs_counter:
            try:
                table.check_counters(completed["cs_increments"])
            except AssertionError as exc:
                raise postmortem.attach(exc, cluster, reason="checker",
                                        detail=str(exc), table=table)

    if spec.audit != "off":
        cluster.auditor.assert_clean()

    fault_stats: dict = {}
    if injector is not None:
        fault_stats = injector.stats()
        fault_stats.update(table.recovery_stats())
        fault_stats["aborted_clients"] = completed["aborted_clients"]
        fault_stats["injected_cs_stalls"] = completed["injected_cs_stalls"]

    spans: list = []
    obs_metrics: dict = {}
    if cluster.obs.enabled:
        spans = cluster.obs.spans.spans()
        obs_metrics = cluster.obs.metrics.collect()
        if active_capture is not None:
            active_capture.add(
                label or (f"{spec.lock_kind}-n{spec.n_nodes}"
                          f"x{spec.threads_per_node}-loc{spec.locality_pct}"
                          f"-seed{spec.seed}"),
                spans, obs_metrics)

    net_stats = cluster.network.stats()
    return RunResult(
        spec=spec,
        completed_ops=completed["ops"],
        measured_ops=measured,
        window_ns=window,
        latencies_ns=np.asarray(latencies, dtype=np.float64),
        local_mask=np.asarray(local_flags, dtype=bool),
        per_thread_ops=dict(per_thread_ops),
        atomicity_violations=cluster.auditor.violation_count,
        nic_stats=net_stats["nics"],
        verb_counts=net_stats["verbs"],
        loopback_verbs=net_stats["loopback_verbs"],
        fault_stats=fault_stats,
        spans=spans,
        obs_metrics=obs_metrics,
    )
