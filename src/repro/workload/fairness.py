"""Fairness metrics over per-thread completion counts.

The paper argues ALock is *fair* and *starvation-free* (budget policy,
§5) but reports only throughput and latency.  These helpers quantify
fairness directly so tests and ablations can assert it:

* **Jain's fairness index** over per-thread op counts — 1.0 when every
  thread completed the same amount, 1/n when one thread got everything;
* **min/max share ratio** — a blunter starvation signal;
* a per-class split (local vs remote threads' service) used by the
  budget ablation to show what a huge local budget does to the remote
  cohort.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np


def jain_index(counts: Sequence[float]) -> float:
    """Jain's fairness index: ``(Σx)² / (n · Σx²)``; in [1/n, 1]."""
    x = np.asarray(list(counts), dtype=np.float64)
    if len(x) == 0:
        return float("nan")
    denom = len(x) * float(np.square(x).sum())
    if denom == 0:
        return 1.0  # nobody got anything: degenerately equal
    return float(np.square(x.sum()) / denom)


def min_max_share(counts: Sequence[float]) -> float:
    """min(count)/max(count); 0 signals starvation, 1 perfect equality."""
    x = np.asarray(list(counts), dtype=np.float64)
    if len(x) == 0:
        return float("nan")
    top = float(x.max())
    return float(x.min()) / top if top > 0 else 1.0


@dataclass(frozen=True)
class FairnessReport:
    """Fairness summary of one run."""

    jain: float
    min_max: float
    per_thread: dict

    @classmethod
    def from_per_thread_ops(cls, per_thread_ops: Mapping) -> "FairnessReport":
        counts = dict(per_thread_ops)
        values = list(counts.values())
        return cls(jain=jain_index(values), min_max=min_max_share(values),
                   per_thread=counts)

    def split_by_node(self) -> dict[int, int]:
        """Total ops per node (useful when cohorts map to nodes)."""
        by_node: dict[int, int] = {}
        for (node, _thread), ops in self.per_thread.items():
            by_node[node] = by_node.get(node, 0) + ops
        return by_node
