"""Per-thread lock-choice streams.

Each client thread owns an independent RNG stream (derived from the
spec seed + its identity), so runs are reproducible and adding threads
does not perturb existing streams.  Locality is sampled per operation:
with probability ``locality_pct`` the thread picks among locks homed on
its node, otherwise among all other locks — Definition 4.1/4.2 applied
to the workload, matching the paper's "95% locality" phrasing.

Within the chosen class the lock is uniform by default; the Zipfian
option (an extension beyond the paper, standard in lock-service
benchmarks) skews popularity to stress passing behaviour further.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigError
from repro.workload.spec import WorkloadSpec


def _zipf_cdf(n: int, theta: float) -> np.ndarray:
    """CDF of a Zipfian distribution over ranks 1..n with skew theta."""
    weights = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), theta)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    return cdf


class LockPicker:
    """Chooses the target lock index for each of one thread's operations."""

    def __init__(self, spec: WorkloadSpec, node: int, thread: int,
                 local_indices: list[int], remote_indices: list[int],
                 rng: np.random.Generator):
        if not local_indices:
            raise ConfigError(
                f"node {node} holds no locks — increase n_locks so every "
                f"node has a partition")
        if spec.locality_pct < 100.0 and not remote_indices:
            raise ConfigError("workload has remote accesses but only one partition")
        self.spec = spec
        self.node = node
        self.thread = thread
        self.rng = rng
        self._local = np.asarray(local_indices, dtype=np.int64)
        self._remote = np.asarray(remote_indices, dtype=np.int64) \
            if remote_indices else np.empty(0, dtype=np.int64)
        self._p_local = spec.locality_pct / 100.0
        if spec.distribution == "zipfian":
            self._local_cdf = _zipf_cdf(len(self._local), spec.zipf_theta)
            self._remote_cdf = (_zipf_cdf(len(self._remote), spec.zipf_theta)
                                if len(self._remote) else None)
        else:
            self._local_cdf = None
            self._remote_cdf = None
        # statistics
        self.local_picks = 0
        self.remote_picks = 0

    def _pick_from(self, indices: np.ndarray, cdf) -> int:
        if cdf is None:
            return int(indices[self.rng.integers(0, len(indices))])
        rank = int(np.searchsorted(cdf, self.rng.random(), side="right"))
        return int(indices[min(rank, len(indices) - 1)])

    def next_lock(self) -> int:
        """Lock index for the thread's next operation."""
        if self._p_local >= 1.0 or self.rng.random() < self._p_local:
            self.local_picks += 1
            return self._pick_from(self._local, self._local_cdf)
        self.remote_picks += 1
        return self._pick_from(self._remote, self._remote_cdf)

    @property
    def observed_locality_pct(self) -> float:
        total = self.local_picks + self.remote_picks
        return 100.0 * self.local_picks / total if total else 0.0
