"""Workload specification, generation, execution and metrics.

This is the benchmark harness of §6: closed-loop clients against a
distributed lock table, parameterized by cluster size, threads/node,
table size (logical contention), and **locality** — the probability that
an operation targets a lock homed on the calling thread's node.

Two termination modes:

* ``ops_per_thread`` (count mode) — every client performs exactly N
  operations; used for correctness runs (guarded counters verified).
* ``measure_ns`` (duration mode) — clients run forever; operations that
  *complete* inside the measurement window (after warmup) are counted
  and timed; used for throughput/latency experiments like the paper's.
"""

from repro.workload.spec import WorkloadSpec
from repro.workload.generator import LockPicker
from repro.workload.fairness import FairnessReport, jain_index, min_max_share
from repro.workload.metrics import LatencySummary, RunResult
from repro.workload.runner import run_workload
from repro.workload.sweep import SweepResult, grid, p99_metric, sweep, throughput_metric

__all__ = [
    "WorkloadSpec",
    "LockPicker",
    "RunResult",
    "LatencySummary",
    "FairnessReport",
    "jain_index",
    "min_max_share",
    "run_workload",
    "sweep",
    "grid",
    "SweepResult",
    "throughput_metric",
    "p99_metric",
]
