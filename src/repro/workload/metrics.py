"""Result containers and latency statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.workload.spec import WorkloadSpec


@dataclass(frozen=True)
class LatencySummary:
    """Percentile summary of operation latencies (nanoseconds)."""

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    p999: float
    max: float

    @classmethod
    def from_samples(cls, samples: np.ndarray) -> "LatencySummary":
        if len(samples) == 0:
            return cls(0, float("nan"), float("nan"), float("nan"),
                       float("nan"), float("nan"), float("nan"))
        p50, p90, p99, p999 = np.percentile(samples, [50, 90, 99, 99.9])
        return cls(len(samples), float(samples.mean()), float(p50),
                   float(p90), float(p99), float(p999), float(samples.max()))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.count == 0:
            return "no samples"
        return (f"n={self.count} mean={self.mean:.0f}ns p50={self.p50:.0f} "
                f"p90={self.p90:.0f} p99={self.p99:.0f} max={self.max:.0f}")


@dataclass
class RunResult:
    """Everything one workload run produced.

    ``latencies_ns`` holds one sample per operation completed inside the
    measurement window (lock-start to unlock-return, matching the
    paper's "one lock and one unlock" operation definition).
    ``local_mask`` marks which samples were local accesses, so Fig. 6
    style CDFs can be segmented.  ``per_thread_ops`` counts each
    thread's operations inside the window (duration mode) or its full
    quota (count mode) — the input to the fairness metrics.
    """

    spec: WorkloadSpec
    completed_ops: int
    measured_ops: int
    window_ns: float
    latencies_ns: np.ndarray
    local_mask: np.ndarray
    per_thread_ops: dict[tuple[int, int], int]
    atomicity_violations: int
    nic_stats: list[dict] = field(default_factory=list)
    verb_counts: dict = field(default_factory=dict)
    loopback_verbs: int = 0
    #: fault-layer counters (injector + lock-table recovery + client
    #: outcomes); empty when the run had no active FaultPlan.
    fault_stats: dict = field(default_factory=dict)
    #: finished typed spans from the run's SpanRecorder (empty unless the
    #: cluster was built with ObsConfig(spans=True)).
    spans: list = field(default_factory=list)
    #: MetricsRegistry.collect() tree snapshot taken at run end (empty
    #: unless observability was enabled).
    obs_metrics: dict = field(default_factory=dict)

    @property
    def retry_count(self) -> int:
        """Verb retransmissions the fault layer performed (0 = fault-free)."""
        return int(self.fault_stats.get("retries", 0))

    @property
    def recovery_count(self) -> int:
        """Recovery events: lease expirations observed by waiters plus
        verbs that exhausted their retry budget."""
        return int(self.fault_stats.get("lease_expirations", 0)
                   + self.fault_stats.get("verb_timeouts", 0))

    @property
    def throughput_ops_per_sec(self) -> float:
        """Operations per second over the measurement window."""
        if self.window_ns <= 0:
            return 0.0
        return self.measured_ops / (self.window_ns * 1e-9)

    @property
    def latency(self) -> LatencySummary:
        return LatencySummary.from_samples(self.latencies_ns)

    @property
    def local_latency(self) -> LatencySummary:
        return LatencySummary.from_samples(self.latencies_ns[self.local_mask])

    @property
    def remote_latency(self) -> LatencySummary:
        return LatencySummary.from_samples(self.latencies_ns[~self.local_mask])

    def latency_cdf(self, *, subset: Optional[str] = None,
                    points: int = 200) -> tuple[np.ndarray, np.ndarray]:
        """(latency values, cumulative probability) pairs for CDF plots.

        Args:
            subset: None for all ops, "local"/"remote" to segment.
            points: downsample to at most this many curve points.
        """
        if subset == "local":
            samples = self.latencies_ns[self.local_mask]
        elif subset == "remote":
            samples = self.latencies_ns[~self.local_mask]
        else:
            samples = self.latencies_ns
        if len(samples) == 0:
            return np.empty(0), np.empty(0)
        ordered = np.sort(samples)
        probs = np.arange(1, len(ordered) + 1) / len(ordered)
        if len(ordered) > points:
            idx = np.linspace(0, len(ordered) - 1, points).astype(np.int64)
            ordered, probs = ordered[idx], probs[idx]
        return ordered, probs

    def lock_ops(self) -> list:
        """Phase-decomposed lock operations extracted from :attr:`spans`
        (see :mod:`repro.obs.phases`); empty when spans were off."""
        from repro.obs.phases import extract_operations

        return extract_operations(self.spans)

    def summary_row(self) -> dict:
        """Flat dict for tabular experiment reports."""
        from repro.workload.fairness import jain_index

        lat = self.latency
        jain = jain_index(list(self.per_thread_ops.values()))
        row = {
            "lock": self.spec.lock_kind,
            "nodes": self.spec.n_nodes,
            "threads_per_node": self.spec.threads_per_node,
            "locks": self.spec.n_locks,
            "locality_pct": self.spec.locality_pct,
            "throughput_ops": round(self.throughput_ops_per_sec),
            "lat_p50_ns": round(lat.p50) if lat.count else None,
            "lat_p99_ns": round(lat.p99) if lat.count else None,
            "lat_p999_ns": round(lat.p999) if lat.count else None,
            "jain": round(jain, 4) if jain == jain else None,
            "measured_ops": self.measured_ops,
            "loopback_verbs": self.loopback_verbs,
            "violations": self.atomicity_violations,
        }
        if self.fault_stats:
            row["retries"] = self.retry_count
            row["recoveries"] = self.recovery_count
        return row
