"""Workload specification."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.common.errors import ConfigError
from repro.faults import FaultPlan


@dataclass(frozen=True)
class WorkloadSpec:
    """Full description of one lock-table experiment run.

    The paper's §6 axes:

    Attributes:
        n_nodes: cluster size (5 / 10 / 20 in the paper).
        threads_per_node: application threads per node (1..12).
        n_locks: table size — logical contention (20 high / 100 medium /
            1000 low).
        locality_pct: percent of operations targeting locks homed on the
            calling thread's node (85 / 90 / 95 / 100).
        lock_kind: "alock" / "spinlock" / "mcs" (or any registered type).
        lock_options: forwarded to the lock factory (budgets etc.).

    Execution control:

    Attributes:
        ops_per_thread: count mode — exact ops per client (0 = disabled).
        warmup_ns / measure_ns: duration mode — measurement window
            boundaries (used when ``ops_per_thread == 0``).
        think_ns: idle time between operations.
        cs_ns: fixed critical-section work time.
        cs_counter: run the guarded-counter increment in the CS (needed
            for lost-update verification; adds memory-op time).
        distribution: lock choice within the locality class — "uniform"
            or "zipfian" (``zipf_theta`` skew, an extension workload).
        seed: root seed; everything derives from it deterministically.
        audit: Table-1 auditing mode; "off" removes the bookkeeping cost
            from big benchmark runs.

    Fault injection:

    Attributes:
        faults: optional :class:`~repro.faults.FaultPlan`.  An active
            plan arms verb loss/spike/crash injection with retransmission
            in the RDMA plane, holder-stall injection in the clients, and
            (via ``faults.lease_ns``) lease-based stall detection in the
            lock table.  ``None`` — and any plan with every knob at
            zero — runs the exact fault-free code path.
    """

    n_nodes: int = 2
    threads_per_node: int = 1
    n_locks: int = 4
    locality_pct: float = 100.0
    lock_kind: str = "alock"
    lock_options: tuple = ()
    ops_per_thread: int = 0
    warmup_ns: float = 200_000.0
    measure_ns: float = 2_000_000.0
    think_ns: float = 0.0
    cs_ns: float = 0.0
    cs_counter: bool = False
    distribution: str = "uniform"
    zipf_theta: float = 0.99
    seed: int = 0
    audit: str = "off"
    faults: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise ConfigError(
                f"faults must be a FaultPlan or None, got {self.faults!r}")
        if self.n_nodes < 1:
            raise ConfigError("n_nodes must be >= 1")
        if self.threads_per_node < 1:
            raise ConfigError("threads_per_node must be >= 1")
        if self.n_locks < self.n_nodes:
            raise ConfigError("n_locks must be >= n_nodes")
        if not 0.0 <= self.locality_pct <= 100.0:
            raise ConfigError("locality_pct must be in [0, 100]")
        if self.locality_pct < 100.0 and self.n_nodes < 2:
            raise ConfigError("remote accesses require at least 2 nodes")
        if self.ops_per_thread < 0:
            raise ConfigError("ops_per_thread must be >= 0")
        if self.ops_per_thread == 0 and self.measure_ns <= 0:
            raise ConfigError("duration mode needs measure_ns > 0")
        if self.distribution not in ("uniform", "zipfian"):
            raise ConfigError(f"unknown distribution {self.distribution!r}")
        if isinstance(self.lock_options, dict):
            # Accept dicts for convenience; store hashable form.
            object.__setattr__(self, "lock_options",
                               tuple(sorted(self.lock_options.items())))

    @property
    def total_threads(self) -> int:
        return self.n_nodes * self.threads_per_node

    @property
    def options_dict(self) -> dict:
        return dict(self.lock_options)

    def with_(self, **overrides) -> "WorkloadSpec":
        """A modified copy (sweep helper)."""
        return replace(self, **overrides)

    def label(self) -> str:
        """Compact human-readable id used in experiment tables."""
        return (f"{self.lock_kind} n{self.n_nodes}x{self.threads_per_node} "
                f"locks={self.n_locks} loc={self.locality_pct:g}%")
