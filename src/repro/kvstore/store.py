"""Sharded key-value store implementation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from repro.common.errors import ConfigError
from repro.locks.base import make_lock
from repro.memory.layout import StructLayout, WordField
from repro.memory.pointer import ptr_addr
from repro.memory.region import to_signed

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster import Cluster, ThreadContext

#: One bucket record: the value, a seqlock-style version (odd while a
#: write is in progress, even when stable; +2 per completed write), and
#: a checksum that must satisfy ``checksum = value + version`` (mod
#: 2^64) at every even version — a torn/lost update breaks one of the
#: two invariants.
KV_RECORD = StructLayout("KVRecord", 64, (
    WordField("value", 0, signed=True),
    WordField("version", 8),
    WordField("checksum", 16),
))

_MASK64 = (1 << 64) - 1
#: Knuth multiplicative hash over integer keys.
_HASH_MULT = 2654435761


@dataclass(frozen=True)
class KVConfig:
    """Store shape and locking choice.

    Attributes:
        n_buckets: fixed bucket count (striped across nodes; >= n_nodes).
        lock_kind: registered lock type guarding each bucket.  For
            multi-key transfers with "alock", nesting is enabled
            automatically.
        lock_options: forwarded to the lock factory.
    """

    n_buckets: int = 64
    lock_kind: str = "alock"
    lock_options: tuple = ()

    def __post_init__(self) -> None:
        if self.n_buckets < 1:
            raise ConfigError("n_buckets must be >= 1")
        if isinstance(self.lock_options, dict):
            object.__setattr__(self, "lock_options",
                               tuple(sorted(self.lock_options.items())))


@dataclass
class _Bucket:
    index: int
    home_node: int
    lock: object
    record_ptr: int


class ShardedKVStore:
    """The store: buckets striped across nodes, one lock per bucket."""

    def __init__(self, cluster: "Cluster", config: Optional[KVConfig] = None):
        self.cluster = cluster
        self.config = config or KVConfig()
        if self.config.n_buckets < cluster.n_nodes:
            raise ConfigError("need n_buckets >= n_nodes for striping")
        options = dict(self.config.lock_options)
        if self.config.lock_kind == "alock":
            # multi-key ops hold two bucket locks at once
            options.setdefault("allow_nesting", True)
        self.buckets: list[_Bucket] = []
        for i in range(self.config.n_buckets):
            node = i % cluster.n_nodes
            lock = make_lock(self.config.lock_kind, cluster, node,
                             name=f"kv[{i}]@n{node}", **options)
            record_ptr = cluster.alloc_on(node, KV_RECORD.size)
            self.buckets.append(_Bucket(i, node, lock, record_ptr))
        self._history = None
        # statistics
        self.gets = 0
        self.puts = 0
        self.transfers = 0
        self.optimistic_gets = 0
        self.optimistic_retries = 0
        self.optimistic_fallbacks = 0

    def attach_history(self, recorder) -> None:
        """Record per-bucket get/put operations into a
        :class:`repro.schedcheck.history.HistoryRecorder`; each bucket is
        an independent register object for the linearizability checker."""
        self._history = recorder

    # -- key mapping ---------------------------------------------------
    def bucket_of(self, key: int) -> int:
        return ((key * _HASH_MULT) & _MASK64) % self.config.n_buckets

    def home_of(self, key: int) -> int:
        """Node holding ``key`` (workload generators use this to build
        locality-controlled key streams)."""
        return self.buckets[self.bucket_of(key)].home_node

    def local_keys(self, node: int, count: int, start: int = 0) -> list[int]:
        """The first ``count`` integer keys >= start homed on ``node``."""
        out = []
        key = start
        while len(out) < count:
            if self.home_of(key) == node:
                out.append(key)
            key += 1
        return out

    # -- record access under the bucket lock -------------------------------
    def _field_ptr(self, bucket: _Bucket, name: str) -> int:
        return bucket.record_ptr + KV_RECORD.offset_of(name)

    def _read_record(self, ctx: "ThreadContext", bucket: _Bucket):
        """(value, version, checksum) using the thread's natural family."""
        local = ctx.is_local(bucket.record_ptr)
        read = ctx.read if local else ctx.r_read
        value = yield from read(self._field_ptr(bucket, "value"), signed=True)
        version = yield from read(self._field_ptr(bucket, "version"))
        checksum = yield from read(self._field_ptr(bucket, "checksum"))
        return value, version, checksum

    def _write_record(self, ctx: "ThreadContext", bucket: _Bucket,
                      value: int, old_version: int):
        """Seqlock write protocol (under the bucket lock): bump the
        version to odd first, mutate, then publish the new even version
        last — so lock-free optimistic readers can detect concurrent
        writes by version parity/change.  Returns the new version."""
        local = ctx.is_local(bucket.record_ptr)
        write = ctx.write if local else ctx.r_write
        new_version = old_version + 2
        yield from write(self._field_ptr(bucket, "version"), old_version + 1)
        yield from write(self._field_ptr(bucket, "value"), value)
        yield from write(self._field_ptr(bucket, "checksum"),
                         (value + new_version) & _MASK64)
        yield from write(self._field_ptr(bucket, "version"), new_version)
        return new_version

    # -- operations ----------------------------------------------------------
    def get(self, ctx: "ThreadContext", key: int):
        """Read ``key``'s value under its bucket lock; returns (value,
        version).  Raises if the record is torn — which a correct lock
        makes impossible."""
        bucket = self.buckets[self.bucket_of(key)]
        opid = (self._history.invoke(ctx.actor, f"kv[{bucket.index}]", "get")
                if self._history is not None else None)
        yield from bucket.lock.lock(ctx)
        try:
            value, version, checksum = yield from self._read_record(ctx, bucket)
        finally:
            yield from bucket.lock.unlock(ctx)
        if checksum != (value + version) & _MASK64:
            raise AssertionError(
                f"torn read on bucket {bucket.index}: value={value} "
                f"version={version} checksum={checksum}")
        self.gets += 1
        if opid is not None:
            self._history.respond(opid, value)
        return value, version

    def put(self, ctx: "ThreadContext", key: int, value: int):
        """Write ``key`` = value under its bucket lock; returns the new
        (even) version."""
        bucket = self.buckets[self.bucket_of(key)]
        opid = (self._history.invoke(ctx.actor, f"kv[{bucket.index}]", "put",
                                     (value,))
                if self._history is not None else None)
        yield from bucket.lock.lock(ctx)
        try:
            _old, version, _ck = yield from self._read_record(ctx, bucket)
            new_version = yield from self._write_record(ctx, bucket, value,
                                                        version)
        finally:
            yield from bucket.lock.unlock(ctx)
        self.puts += 1
        if opid is not None:
            self._history.respond(opid)
        return new_version

    def add(self, ctx: "ThreadContext", key: int, delta: int):
        """Read-modify-write ``key`` += delta under the lock; returns the
        new value."""
        bucket = self.buckets[self.bucket_of(key)]
        yield from bucket.lock.lock(ctx)
        try:
            value, version, _ck = yield from self._read_record(ctx, bucket)
            yield from self._write_record(ctx, bucket, value + delta, version)
        finally:
            yield from bucket.lock.unlock(ctx)
        self.puts += 1
        return value + delta

    def transfer(self, ctx: "ThreadContext", key_from: int, key_to: int,
                 amount: int):
        """Atomically move ``amount`` between two keys: both bucket locks
        taken in global bucket order (deadlock avoidance).  Keys mapping
        to the same bucket degrade to a single-lock RMW."""
        b_from = self.buckets[self.bucket_of(key_from)]
        b_to = self.buckets[self.bucket_of(key_to)]
        if b_from.index == b_to.index:
            yield from self.add(ctx, key_from, 0)  # touch for the version
            self.transfers += 1
            return
        first, second = sorted((b_from, b_to), key=lambda b: b.index)
        yield from first.lock.lock(ctx)
        try:
            yield from second.lock.lock(ctx)
            try:
                v_from, ver_from, _ = yield from self._read_record(ctx, b_from)
                v_to, ver_to, _ = yield from self._read_record(ctx, b_to)
                yield from self._write_record(ctx, b_from, v_from - amount,
                                              ver_from)
                yield from self._write_record(ctx, b_to, v_to + amount,
                                              ver_to)
            finally:
                yield from second.lock.unlock(ctx)
        finally:
            yield from first.lock.unlock(ctx)
        self.transfers += 1

    def get_optimistic(self, ctx: "ThreadContext", key: int,
                       max_retries: int = 16):
        """FaRM-style lock-free read: seqlock validation instead of the
        bucket lock (the one-sided-read design the paper's related work
        contrasts with locking).

        Protocol: read version (must be even = no write in progress),
        read value and checksum, re-read version; accept iff the version
        is unchanged and the checksum equation holds.  Retries on
        conflict; falls back to the locked :meth:`get` after
        ``max_retries`` (writer storms).  Returns (value, version).
        """
        bucket = self.buckets[self.bucket_of(key)]
        local = ctx.is_local(bucket.record_ptr)
        read = ctx.read if local else ctx.r_read
        version_ptr = self._field_ptr(bucket, "version")
        for _attempt in range(max_retries):
            v1 = yield from read(version_ptr)
            if v1 % 2 == 1:                      # write in flight
                self.optimistic_retries += 1
                continue
            value = yield from read(self._field_ptr(bucket, "value"),
                                    signed=True)
            checksum = yield from read(self._field_ptr(bucket, "checksum"))
            v2 = yield from read(version_ptr)
            if v1 == v2 and checksum == (value + v1) & _MASK64:
                self.optimistic_gets += 1
                return value, v1
            self.optimistic_retries += 1
        self.optimistic_fallbacks += 1
        result = yield from self.get(ctx, key)
        return result

    # -- oracle verification (no simulated cost) -----------------------------
    def peek_value(self, key: int) -> int:
        bucket = self.buckets[self.bucket_of(key)]
        region = self.cluster.regions[bucket.home_node]
        return to_signed(region.peek(ptr_addr(self._field_ptr(bucket, "value"))))

    def total_value(self) -> int:
        """Sum of all bucket values (conserved by transfers)."""
        total = 0
        for bucket in self.buckets:
            region = self.cluster.regions[bucket.home_node]
            total += to_signed(region.peek(ptr_addr(self._field_ptr(bucket, "value"))))
        return total

    def audit(self) -> list[int]:
        """Bucket indices whose checksum equation is broken (always empty
        under a correct lock)."""
        broken = []
        for bucket in self.buckets:
            region = self.cluster.regions[bucket.home_node]
            value = region.peek(ptr_addr(self._field_ptr(bucket, "value")))
            version = region.peek(ptr_addr(self._field_ptr(bucket, "version")))
            checksum = region.peek(ptr_addr(self._field_ptr(bucket, "checksum")))
            if checksum != (value + version) & _MASK64:
                broken.append(bucket.index)
        return broken
