"""A sharded key-value store built on the lock primitives.

The paper's introduction motivates ALock with RDMA data repositories
(FaRM-style stores) that today need loopback or RPCs to keep local and
remote accesses atomic.  This package is that application: keys hash to
fixed-size buckets striped across the cluster, each bucket guarded by a
lock of any registered kind; readers and writers — local threads with
shared-memory ops, remote threads with verbs — synchronize purely
through the lock.

Correctness witnesses mirror the lock table's: every record carries a
version word incremented under the lock, and a checksum word that must
always equal ``value + version`` — a torn or lost update breaks the
equation and :meth:`ShardedKVStore.audit` finds it.

Multi-key transfers take both bucket locks in *global bucket order*
(the classic deadlock-avoidance discipline); with ALock this requires
the ``allow_nesting`` descriptor-pool extension.
"""

from repro.kvstore.store import KVConfig, ShardedKVStore

__all__ = ["ShardedKVStore", "KVConfig"]
