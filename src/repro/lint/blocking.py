"""deep-blocking: sim-time yields where the protocol can't afford them.

"Blocking" in the simulator means yielding sim time — parking on an
event, waiting on a watched word, acquiring another resource.  The
paper's liveness argument assumes the releaser's handover runs to
completion in bounded verb time, and that a parked waiter's wakeup
condition is armed *before* the condition is last checked.  Three
checks enforce that statically, using the transitive effect summaries
from :mod:`repro.lint.effects`:

B1 (raw check-then-park, reported at the yield)
    ``yield region.watch(addr)`` arms a one-shot watcher *at yield
    time*; any write landing between the preceding poll and the yield
    is lost and the thread sleeps forever — the ``lost_wakeup`` seeded
    bug.  ``ctx.wait_local*`` arms the watcher before re-checking and
    is the sanctioned primitive, so any raw park in lock code is a
    finding.

B2 (blocking wait predicate, reported at the wait call)
    The predicate passed to ``ctx.wait_local`` / ``wait_local_cond``
    re-runs on every wakeup inside the wait machinery; if it
    (transitively) blocks, the waiter can deadlock against the very
    transition it polls for.  Predicates must be effect-free reads.

B3 (unbounded block during handover, reported at the blocking call)
    Between a failed relinquish CAS and the discharging store (the
    window computed by :func:`repro.lint.protocol.relinquish_windows`),
    the successor is spinning on a word only this thread will write.
    Unbounded blocking inside that window (acquiring another lock,
    waiting on an unrelated condition) stalls the successor indefinitely
    — only the bounded verbs of the handover itself and the wait for
    the successor's *link* (``wait_local`` on a ``next`` pointer, the
    one wait Algorithm 3 performs there) are legitimate.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.deep import DeepContext, DeepRule
from repro.lint.effects import BLOCK_UNBOUNDED, is_raw_park
from repro.lint.findings import Finding
from repro.lint.ir import FunctionInfo, attr_tail, expr_text, name_tails
from repro.lint.protocol import predicate_node, relinquish_windows

_WAIT_TAILS = frozenset({"wait_local", "wait_local_cond"})

#: substrings that mark a pointer expression as the successor link —
#: the one word the releaser is *supposed* to wait on mid-handover.
_SUCCESSOR_HINTS = ("next", "nxt", "succ")


def _mentions_successor(node: ast.AST) -> bool:
    return any(any(hint in tail.lower() for hint in _SUCCESSOR_HINTS)
               for tail in name_tails(node))


RULE_ID = "deep-blocking"


class DeepBlockingRule(DeepRule):
    rule_id = RULE_ID
    description = ("sim-time yields that can strand a waiter: raw "
                   "check-then-park, blocking wait predicates, unbounded "
                   "blocking mid-handover")

    def check_project(self, ctx: DeepContext) -> Iterator[Finding]:
        for fn in ctx.checked_functions():
            yield from self._check_raw_parks(ctx, fn)
            yield from self._check_wait_predicates(ctx, fn)
            yield from self._check_handover_window(ctx, fn)

    # -- B1 ----------------------------------------------------------------
    def _check_raw_parks(self, ctx: DeepContext,
                         fn: FunctionInfo) -> Iterator[Finding]:
        for node in ast.walk(fn.node):
            if not is_raw_park(node):
                continue
            target = expr_text(node.value.args[0]) if node.value.args else None
            word = f" on {target}" if target else ""
            yield ctx.finding(
                fn, node.lineno, node.col_offset, self.rule_id,
                self.default_severity,
                f"raw check-then-park{word}: the watcher is armed at yield "
                f"time, after the poll that decided to sleep — a write "
                f"landing in between is lost and the thread never wakes; "
                f"use ctx.wait_local/wait_local_cond (watcher-before-check)")

    # -- B2 ----------------------------------------------------------------
    def _check_wait_predicates(self, ctx: DeepContext,
                               fn: FunctionInfo) -> Iterator[Finding]:
        for call in ctx.index.calls_in(fn):
            if attr_tail(call.func) not in _WAIT_TAILS or len(call.args) < 2:
                continue
            pred = predicate_node(fn, call.args[1])
            if pred is None:
                continue
            body = pred.body
            probe = (ast.Module(body=body, type_ignores=[])
                     if isinstance(body, list) else body)
            effects = ctx.effects.stmt_effects(probe, fn)
            if effects.blocking > 0 or effects.parks_raw:
                pred_name = getattr(pred, "name", "<lambda>")
                yield ctx.finding(
                    fn, call.lineno, call.col_offset, self.rule_id,
                    self.default_severity,
                    f"wait predicate {pred_name}() can block "
                    f"({effects.blocking_label}) — it re-runs inside the "
                    f"wait machinery on every wakeup and must be an "
                    f"effect-free read of the watched words")

    # -- B3 ----------------------------------------------------------------
    def _check_handover_window(self, ctx: DeepContext,
                               fn: FunctionInfo) -> Iterator[Finding]:
        sites, cfg, before = relinquish_windows(ctx, fn)
        if not sites:
            return
        for idx in sorted(before):
            node = cfg.node(idx)
            if not node.heads:
                continue
            open_sites = sorted(sid for tok, sid in before[idx]
                                if tok == "oblig")
            if not open_sites:
                continue
            for head in node.heads:
                yield from self._window_calls(ctx, fn, sites, open_sites,
                                              head)

    def _window_calls(self, ctx: DeepContext, fn: FunctionInfo, sites,
                      open_sites, head: ast.AST) -> Iterator[Finding]:
        for call in ast.walk(head):
            if not isinstance(call, ast.Call):
                continue
            tail = attr_tail(call.func)
            if tail in _WAIT_TAILS and call.args \
                    and _mentions_successor(call.args[0]):
                continue  # waiting for the successor's link: legal
            if ctx.effects.call_effects(call, fn).blocking \
                    == BLOCK_UNBOUNDED:
                site = sites[open_sites[0]]
                yield ctx.finding(
                    fn, call.lineno, call.col_offset, self.rule_id,
                    self.default_severity,
                    f"unbounded blocking call while the handover for "
                    f"{site.ptr_text} (failed CAS at line {site.line}) "
                    f"is undischarged — the successor is spinning on a "
                    f"word only this thread will write")
