"""Finding and severity types shared by every simlint rule.

A :class:`Finding` is one diagnostic anchored to a file/line/column.
The dataclass is ordered so that sorting a list of findings yields the
canonical report order — (file, line, col, rule, message) — which the
CI gate relies on being identical across runs, interpreters, and
``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

#: Finding severities.  Both gate the tree (the exit code does not
#: distinguish them); the split exists so reports can prioritise.
ERROR = "error"
WARNING = "warning"

SEVERITIES = (ERROR, WARNING)


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic produced by a rule.

    Attributes:
        file: path as given to the engine, normalised to POSIX form —
            stable across platforms so baselines are portable.
        line: 1-based source line.
        col: 0-based column (``ast`` convention).
        rule: rule identifier, e.g. ``"nondet-source"``.
        severity: :data:`ERROR` or :data:`WARNING`.
        message: human-readable description of the hazard.
    """

    file: str
    line: int
    col: int
    rule: str
    severity: str
    message: str

    def render(self) -> str:
        """``file:line:col: severity rule: message`` (clickable in most
        editors and CI logs)."""
        return (f"{self.file}:{self.line}:{self.col}: "
                f"{self.severity} {self.rule}: {self.message}")

    def to_json(self) -> dict:
        return asdict(self)

    @property
    def baseline_key(self) -> tuple[str, str, str]:
        """Identity used by the baseline: deliberately line-insensitive
        so unrelated edits above a grandfathered finding don't un-match
        it."""
        return (self.file, self.rule, self.message)
