"""Transitive effect summaries over the simlint call graph.

Each indexed function gets a small abstract summary — can it raise, can
it block (and is the block bounded), does it issue a remote write-effect
verb, does it park raw on a memory watch — computed bottom-up to a
fixpoint over the :class:`~repro.lint.ir.ProjectIndex` may-call graph.
The deep analyses consume these three ways:

* the lockset pass parameterizes CFG exception edges with
  :meth:`EffectEngine.stmt_raises`, so "leaks on the exceptional path"
  findings fire only where an exception can actually originate;
* the protocol pass asks whether a handover obligation is discharged by
  a statement with a remote *write* effect (directly or through a
  helper like ``_neighbor_write``);
* the blocking pass reads the blocking level and raw-park bit directly.

Simulator machinery (the verbs API, local region ops, waits) is
modelled by **intrinsics** — a fixed name-keyed table consulted before
call resolution — rather than by analyzing its implementation.  The
machinery legitimately parks, spins and retries internally; summarizing
it symbolically keeps those internals from bleeding into every lock
that calls ``ctx.r_cas``.  The table encodes the simulator's contract:

======================  ========== ======= ======
call (by name tail)     blocking   raises  writes
======================  ========== ======= ======
``wait_local*``         unbounded  yes     no
``r_read``              bounded    yes     no
``r_write/r_cas/r_faa`` bounded    yes     yes
``write/cas/faa``       none       no      yes
``read`` / ``fence``    none       no      no
``timeout``             bounded    no      no
======================  ========== ======= ======

Remote verbs "raise" because fault injection (PR 1) can fail them;
local region ops are audited infallible accessors.  The ``writes``
bit marks *store* effect regardless of locality — the local-cohort
half of ALock discharges its budget handover with a plain ``write``,
and the protocol pass must accept that discharge.  Unresolved calls
default to *inert* — a deliberate precision/recall trade: unknown
helpers (logging, math, formatting) vastly outnumber unknown blockers,
and the blockers that matter in lock code go through the verbs API,
which *is* modelled.  The one exception: an unresolved ``.lock()`` /
``.acquire()`` / ``.request()`` is assumed unbounded-blocking and
raising, since acquiring *anything* while holding protocol state is
exactly what deep-blocking exists to catch.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.lint.ir import FunctionInfo, ProjectIndex, attr_tail

#: blocking lattice: NONE < BOUNDED < UNBOUNDED
BLOCK_NONE = 0
BLOCK_BOUNDED = 1
BLOCK_UNBOUNDED = 2

_BLOCK_LABEL = {BLOCK_NONE: "none", BLOCK_BOUNDED: "bounded",
                BLOCK_UNBOUNDED: "unbounded"}


@dataclass(frozen=True)
class Effects:
    """Abstract effect summary of a call or function."""

    blocking: int = BLOCK_NONE
    raises: bool = False
    writes: bool = False      #: issues a remote write-effect verb
    parks_raw: bool = False   #: contains a raw ``yield region.watch(...)``

    def join(self, other: "Effects") -> "Effects":
        return Effects(
            blocking=max(self.blocking, other.blocking),
            raises=self.raises or other.raises,
            writes=self.writes or other.writes,
            parks_raw=self.parks_raw or other.parks_raw,
        )

    @property
    def blocking_label(self) -> str:
        return _BLOCK_LABEL[self.blocking]


INERT = Effects()

#: simulator-machinery contract, keyed by the call name's last segment.
#: Consulted *before* call resolution so machinery internals never leak
#: into lock summaries.
INTRINSICS: Dict[str, Effects] = {
    "wait_local": Effects(blocking=BLOCK_UNBOUNDED, raises=True),
    "wait_local_cond": Effects(blocking=BLOCK_UNBOUNDED, raises=True),
    "wait_local_any": Effects(blocking=BLOCK_UNBOUNDED, raises=True),
    "r_read": Effects(blocking=BLOCK_BOUNDED, raises=True),
    "r_write": Effects(blocking=BLOCK_BOUNDED, raises=True, writes=True),
    "r_cas": Effects(blocking=BLOCK_BOUNDED, raises=True, writes=True),
    "r_faa": Effects(blocking=BLOCK_BOUNDED, raises=True, writes=True),
    "read": INERT,
    "write": Effects(writes=True),
    "cas": Effects(writes=True),
    "faa": Effects(writes=True),
    "fence": INERT,
    "trace": INERT,
    "timeout": Effects(blocking=BLOCK_BOUNDED),
    "watch": INERT,       # returns an event; the park is the *yield* of it
    "watch_any": INERT,
    # The oracle markers assert invariants (double-acquire, release
    # without hold) that only fire when the protocol is already broken
    # and the run is dead; modelling them as raise-capable would flag
    # every lock() as "can raise after publishing".
    "_note_acquired": INERT,
    "_note_released": INERT,
}

#: unresolved calls with these tails are assumed to acquire something.
_ACQUIRE_TAILS = frozenset({"lock", "acquire", "request"})
_ACQUIRE_EFFECTS = Effects(blocking=BLOCK_UNBOUNDED, raises=True)

#: yields of calls with these tails are raw parks (one-shot wakeups
#: armed at yield time — the check-then-park shape deep-blocking hunts).
_PARK_TAILS = frozenset({"watch", "watch_any"})


def is_raw_park(node: ast.AST) -> bool:
    """True for ``yield <expr>.watch(...)`` / ``yield <expr>.watch_any(...)``."""
    return (isinstance(node, ast.Yield)
            and isinstance(node.value, ast.Call)
            and attr_tail(node.value.func) in _PARK_TAILS)


def iter_raw_parks(fn_node: ast.AST) -> Iterator[ast.Yield]:
    for node in ast.walk(fn_node):
        if is_raw_park(node):
            yield node  # type: ignore[misc]


class EffectEngine:
    """Fixpoint effect summaries for one :class:`ProjectIndex`."""

    def __init__(self, index: ProjectIndex):
        self.index = index
        self._memo: Dict[str, Effects] = {}
        self._solved: set[str] = set()

    # -- queries -----------------------------------------------------------
    def function_effects(self, fn: FunctionInfo) -> Effects:
        """Transitive summary of ``fn`` (memoized; cycles converge via
        fixpoint iteration over the call-graph closure)."""
        if fn.qualname not in self._solved:
            self._solve(fn)
        return self._memo[fn.qualname]

    def call_effects(self, call: ast.Call, caller: FunctionInfo) -> Effects:
        """Summary of one call site: intrinsic contract if the name is
        machinery, else the join of resolved callees' summaries, else
        the inert/acquire fallback."""
        tail = attr_tail(call.func)
        if tail in INTRINSICS:
            return INTRINSICS[tail]
        callees = self.index.resolve_call(call, caller)
        if callees:
            out = INERT
            for callee in callees:
                out = out.join(self.function_effects(callee))
            return out
        if tail in _ACQUIRE_TAILS:
            return _ACQUIRE_EFFECTS
        return INERT

    def stmt_raises(self, stmt: ast.AST, caller: FunctionInfo) -> bool:
        """Raise-capability predicate for CFG construction: explicit
        raise/assert, or any contained call whose summary raises."""
        if isinstance(stmt, (ast.Raise, ast.Assert)):
            return True
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) and \
                    self.call_effects(node, caller).raises:
                return True
        return False

    def stmt_effects(self, stmt: ast.AST, caller: FunctionInfo) -> Effects:
        """Join of all call summaries (and raw parks) inside a statement."""
        out = INERT
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                out = out.join(self.call_effects(node, caller))
            elif is_raw_park(node):
                out = out.join(Effects(blocking=BLOCK_UNBOUNDED,
                                       parks_raw=True))
        return out

    # -- solving -----------------------------------------------------------
    def _local_and_deps(self, fn: FunctionInfo):
        """(intrinsic-only effects of ``fn``'s own body, non-intrinsic
        callee deps).  Cached per function."""
        local = INERT
        deps: Dict[str, FunctionInfo] = {}
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                tail = attr_tail(node.func)
                if tail in INTRINSICS:
                    local = local.join(INTRINSICS[tail])
                    continue
                callees = self.index.resolve_call(node, fn)
                if callees:
                    for callee in callees:
                        deps.setdefault(callee.qualname, callee)
                elif tail in _ACQUIRE_TAILS:
                    local = local.join(_ACQUIRE_EFFECTS)
            elif isinstance(node, ast.Raise):
                local = local.join(Effects(raises=True))
            elif is_raw_park(node):
                local = local.join(Effects(blocking=BLOCK_UNBOUNDED,
                                           parks_raw=True))
        return local, deps

    def _solve(self, root: FunctionInfo) -> None:
        closure: Dict[str, FunctionInfo] = {}
        stack = [root]
        locals_: Dict[str, Effects] = {}
        deps: Dict[str, Dict[str, FunctionInfo]] = {}
        while stack:
            fn = stack.pop()
            if fn.qualname in closure or fn.qualname in self._solved:
                continue
            closure[fn.qualname] = fn
            local, fn_deps = self._local_and_deps(fn)
            locals_[fn.qualname] = local
            deps[fn.qualname] = fn_deps
            stack.extend(fn_deps.values())
        order = sorted(closure)
        for qual in order:
            self._memo.setdefault(qual, locals_[qual])
        changed = True
        while changed:
            changed = False
            for qual in order:
                new = locals_[qual]
                for dep_qual in sorted(deps[qual]):
                    new = new.join(self._memo.get(dep_qual, INERT))
                if new != self._memo[qual]:
                    self._memo[qual] = new
                    changed = True
        self._solved.update(order)


def deep_scope(index: ProjectIndex,
               base_name: str = "DistributedLock") -> Dict[str, FunctionInfo]:
    """The functions the deep rules police: every method of every class
    deriving (by name, transitively) from ``base_name``, plus the
    call-graph closure of those methods.  Sorted dict keyed by qualname.

    Machinery reached through the closure (pools, descriptors, local
    helpers) is analyzed too — a release hidden three helpers down still
    counts — but findings are *reported* at the statement inside the
    scope function where the path condition holds.
    """
    roots = []
    for cls_info in index.subclasses_of(base_name):
        for name in sorted(cls_info.methods):
            roots.append(cls_info.methods[name])
    return {fn.qualname: fn for fn in index.reachable_from(roots)}
