"""Per-function control-flow graphs and a worklist dataflow engine.

The deep analyses need path-sensitivity the per-file rules don't: *which
branch* of a failed tail-CAS a statement sits on, whether a release is
reached on *every* path to an exit, whether an obligation is still open
when a ``return`` fires.  This module provides the substrate:

* :func:`build_cfg` — a statement-level CFG for one function body.
  Nodes are individual statements (or branch conditions); edges carry a
  kind: ``normal``, ``true``/``false`` (branch outcomes, including a
  loop's iterate/exhaust pair) and ``exc`` (exceptional flow into the
  nearest handler or the function's exceptional exit).  Two synthetic
  exits — ``EXIT`` for returns/fall-through and ``RAISE`` for
  uncaught exceptions — let analyses distinguish "ends holding" from
  "ends raised".
* :class:`ForwardAnalysis` / :func:`run_forward` — a monotone forward
  worklist solver.  States are analysis-defined immutable values; the
  engine iterates to fixpoint with deterministic node order (a property
  simlint holds itself to everywhere).

Exception edges are generated only at statements the ``raises``
predicate accepts (by default: anything containing a call, ``yield``,
``await`` or ``assert``).  Analyses narrow this with effect summaries —
a local arithmetic statement cannot fault a descriptor handoff, but a
remote verb under fault injection can — keeping "leaks on the
exceptional path" findings anchored to operations that really can
raise mid-protocol.

``finally`` blocks are materialized once: abrupt jumps (return / raise /
break / continue) route through the block, whose exit then rejoins every
recorded continuation.  That merges paths (a normal completion may
appear to reach ``RAISE``), which over-approximates *may* analyses and
is documented behaviour; none of the lock protocol code in scope relies
on finally-heavy control flow.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

NORMAL = "normal"
TRUE = "true"
FALSE = "false"
EXC = "exc"

#: node kinds
K_ENTRY = "entry"
K_EXIT = "exit"        #: normal function exit (return / fall-through)
K_RAISE = "raise"      #: exceptional function exit
K_STMT = "stmt"
K_COND = "cond"        #: branch condition (If/While test, For iterator)
K_FINALLY = "finally"  #: synthetic head of a finally block


@dataclass
class CfgNode:
    idx: int
    kind: str
    ast_node: Optional[ast.AST] = None
    #: the sub-ASTs that *execute at* this node.  For a plain statement
    #: that is the statement itself; for a branch node only the test /
    #: iterator (the body statements have their own nodes); for a
    #: ``with`` head the context-manager expressions.  Analyses walk
    #: ``heads`` — walking ``ast_node`` on a compound statement would
    #: double-apply the body's effects at the branch point.
    heads: Tuple[ast.AST, ...] = ()

    @property
    def line(self) -> int:
        return getattr(self.ast_node, "lineno", 0)


@dataclass
class Cfg:
    nodes: List[CfgNode] = field(default_factory=list)
    #: idx -> [(succ idx, edge kind)]
    succs: Dict[int, List[Tuple[int, str]]] = field(default_factory=dict)
    entry: int = 0
    exit: int = 1
    raise_exit: int = 2

    def node(self, idx: int) -> CfgNode:
        return self.nodes[idx]

    def edges(self) -> Iterable[Tuple[int, int, str]]:
        for src in sorted(self.succs):
            for dst, kind in self.succs[src]:
                yield src, dst, kind


def default_raises(stmt: ast.AST) -> bool:
    """Default raise-capability: any statement containing a call, yield,
    await or assert can transfer to the exceptional path."""
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    for node in ast.walk(stmt):
        if isinstance(node, (ast.Call, ast.Yield, ast.YieldFrom, ast.Await)):
            return True
    return False


class _Builder:
    def __init__(self, raises: Callable[[ast.AST], bool]):
        self.cfg = Cfg()
        self.raises = raises
        for kind in (K_ENTRY, K_EXIT, K_RAISE):
            self._new(kind, None)
        # stacks
        self._loops: List[Tuple[int, List[Tuple[int, str]]]] = []  # (header, break edges)
        self._exc_targets: List[List[int]] = [[self.cfg.raise_exit]]
        self._finallys: List[Tuple[int, List[int]]] = []  # (finally head, continuations)

    # -- plumbing ----------------------------------------------------------
    def _new(self, kind: str, node: Optional[ast.AST],
             heads: Optional[Tuple[ast.AST, ...]] = None) -> int:
        idx = len(self.cfg.nodes)
        if heads is None:
            heads = (node,) if (node is not None and kind == K_STMT) else ()
        self.cfg.nodes.append(CfgNode(idx, kind, node, heads))
        self.cfg.succs[idx] = []
        return idx

    def _edge(self, src: int, dst: int, kind: str) -> None:
        pair = (dst, kind)
        if pair not in self.cfg.succs[src]:
            self.cfg.succs[src].append(pair)

    def _connect(self, frontier: Sequence[Tuple[int, str]], dst: int) -> None:
        for src, kind in frontier:
            self._edge(src, dst, kind)

    def _abrupt(self, src: int, kind: str, ultimate: int) -> None:
        """Route an abrupt jump (return/raise/break/continue) through any
        enclosing finally blocks to ``ultimate``."""
        if self._finallys:
            head, conts = self._finallys[-1]
            self._edge(src, head, kind)
            if ultimate not in conts:
                conts.append(ultimate)
        else:
            self._edge(src, ultimate, kind)

    def _exc_edges(self, idx: int, stmt: ast.AST) -> None:
        if not self.raises(stmt):
            return
        for target in self._exc_targets[-1]:
            if target == self.cfg.raise_exit:
                self._abrupt(idx, EXC, target)
            else:
                self._edge(idx, target, EXC)

    # -- statement dispatch ------------------------------------------------
    def build(self, body: Sequence[ast.stmt]) -> Cfg:
        frontier = self._body(body, [(self.cfg.entry, NORMAL)])
        self._connect(frontier, self.cfg.exit)
        return self.cfg

    def _body(self, stmts: Sequence[ast.stmt],
              frontier: List[Tuple[int, str]]) -> List[Tuple[int, str]]:
        for stmt in stmts:
            if not frontier:
                break  # unreachable tail (after return/raise/break)
            frontier = self._stmt(stmt, frontier)
        return frontier

    def _stmt(self, stmt: ast.stmt,
              frontier: List[Tuple[int, str]]) -> List[Tuple[int, str]]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier)
        if isinstance(stmt, (ast.While,)):
            return self._while(stmt, frontier)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            idx = self._new(K_STMT, stmt,
                            heads=tuple(i.context_expr for i in stmt.items))
            self._connect(frontier, idx)
            self._exc_edges(idx, stmt)
            return self._body(stmt.body, [(idx, NORMAL)])
        idx = self._new(K_STMT, stmt)
        self._connect(frontier, idx)
        if isinstance(stmt, ast.Return):
            self._abrupt(idx, NORMAL, self.cfg.exit)
            return []
        if isinstance(stmt, ast.Raise):
            for target in self._exc_targets[-1]:
                if target == self.cfg.raise_exit:
                    self._abrupt(idx, NORMAL, target)
                else:
                    self._edge(idx, target, NORMAL)
            return []
        if isinstance(stmt, ast.Break):
            if self._loops:
                self._loops[-1][1].append((idx, NORMAL))
            return []
        if isinstance(stmt, ast.Continue):
            if self._loops:
                self._edge(idx, self._loops[-1][0], NORMAL)
            return []
        self._exc_edges(idx, stmt)
        return [(idx, NORMAL)]

    def _if(self, stmt: ast.If,
            frontier: List[Tuple[int, str]]) -> List[Tuple[int, str]]:
        cond = self._new(K_COND, stmt, heads=(stmt.test,))
        self._connect(frontier, cond)
        self._exc_edges(cond, stmt.test)
        out = self._body(stmt.body, [(cond, TRUE)])
        if stmt.orelse:
            out = out + self._body(stmt.orelse, [(cond, FALSE)])
        else:
            out = out + [(cond, FALSE)]
        return out

    @staticmethod
    def _const_true(test: ast.AST) -> bool:
        return isinstance(test, ast.Constant) and bool(test.value)

    def _while(self, stmt: ast.While,
               frontier: List[Tuple[int, str]]) -> List[Tuple[int, str]]:
        cond = self._new(K_COND, stmt, heads=(stmt.test,))
        self._connect(frontier, cond)
        self._exc_edges(cond, stmt.test)
        breaks: List[Tuple[int, str]] = []
        self._loops.append((cond, breaks))
        body_out = self._body(stmt.body, [(cond, TRUE)])
        self._connect(body_out, cond)
        self._loops.pop()
        out = list(breaks)
        if not self._const_true(stmt.test):
            exits = [(cond, FALSE)]
            if stmt.orelse:
                exits = self._body(stmt.orelse, exits)
            out += exits
        return out

    def _for(self, stmt, frontier: List[Tuple[int, str]]) -> List[Tuple[int, str]]:
        cond = self._new(K_COND, stmt, heads=(stmt.iter,))
        self._connect(frontier, cond)
        self._exc_edges(cond, stmt.iter)
        breaks: List[Tuple[int, str]] = []
        self._loops.append((cond, breaks))
        body_out = self._body(stmt.body, [(cond, TRUE)])
        self._connect(body_out, cond)
        self._loops.pop()
        exits = [(cond, FALSE)]
        if stmt.orelse:
            exits = self._body(stmt.orelse, exits)
        return list(breaks) + exits

    def _try(self, stmt: ast.Try,
             frontier: List[Tuple[int, str]]) -> List[Tuple[int, str]]:
        fin_head: Optional[int] = None
        fin_conts: List[int] = []
        if stmt.finalbody:
            fin_head = self._new(K_FINALLY, stmt)
            self._finallys.append((fin_head, fin_conts))

        handler_heads = [self._new(K_STMT, h, heads=()) for h in stmt.handlers]
        bare = any(h.type is None or
                   (isinstance(h.type, ast.Name)
                    and h.type.id == "BaseException")
                   for h in stmt.handlers)
        targets = list(handler_heads)
        if not bare:
            targets += self._exc_targets[-1]
        self._exc_targets.append(targets if targets else
                                 list(self._exc_targets[-1]))
        body_out = self._body(stmt.body, list(frontier))
        self._exc_targets.pop()
        if stmt.orelse:
            body_out = self._body(stmt.orelse, body_out)

        out = list(body_out)
        for head, handler in zip(handler_heads, stmt.handlers):
            out += self._body(handler.body, [(head, NORMAL)])

        if fin_head is not None:
            self._finallys.pop()
            self._connect(out, fin_head)
            fin_out = self._body(stmt.finalbody, [(fin_head, NORMAL)])
            for cont in fin_conts:
                self._connect(fin_out, cont)
            return fin_out
        return out


def build_cfg(func: ast.AST,
              raises: Callable[[ast.AST], bool] = default_raises) -> Cfg:
    """CFG for one ``FunctionDef``/``AsyncFunctionDef`` body."""
    return _Builder(raises).build(func.body)  # type: ignore[attr-defined]


# --------------------------------------------------------------------------
# worklist solver
# --------------------------------------------------------------------------

class ForwardAnalysis:
    """Monotone forward dataflow over a :class:`Cfg`.

    Subclasses define the abstract state (any immutable, equality-
    comparable value), the join, and the transfer function.  The engine
    computes a fixpoint of states *before* each node; query with
    :meth:`run_forward`'s return value.

    ``transfer(node, state)`` → state after executing ``node``.
    ``transfer_edge(node, kind, pre, post)`` → state carried along one
    out-edge; the default sends ``post`` along normal/branch edges and
    ``join(pre, post)`` along ``exc`` edges (an exception may fire
    before or after the node's effect — both must be covered).
    Branch-sensitive analyses override it to refine on TRUE/FALSE.
    """

    def initial(self):
        raise NotImplementedError

    def join(self, a, b):
        raise NotImplementedError

    def transfer(self, node: CfgNode, state):
        return state

    def transfer_edge(self, node: CfgNode, kind: str, pre, post):
        if kind == EXC:
            return self.join(pre, post)
        return post


def run_forward(cfg: Cfg, analysis: ForwardAnalysis,
                max_iterations: int = 100_000) -> Dict[int, object]:
    """Solve ``analysis`` over ``cfg``; returns {node idx -> state
    before node} for every reachable node (unreachable nodes absent)."""
    before: Dict[int, object] = {cfg.entry: analysis.initial()}
    work: List[int] = [cfg.entry]
    iterations = 0
    while work:
        iterations += 1
        if iterations > max_iterations:  # pragma: no cover - defensive
            break
        idx = work.pop(0)
        node = cfg.nodes[idx]
        pre = before[idx]
        post = analysis.transfer(node, pre)
        for succ, kind in cfg.succs.get(idx, ()):
            carried = analysis.transfer_edge(node, kind, pre, post)
            if carried is None:
                continue
            old = before.get(succ)
            new = carried if old is None else analysis.join(old, carried)
            if old is None or new != old:
                before[succ] = new
                if succ not in work:
                    work.append(succ)
    return before
