"""Committed baseline of grandfathered findings.

A baseline lets the gate turn on *today* while legacy findings are paid
down over time: findings recorded in the baseline are subtracted from a
run, anything new fails it.  Entries are keyed ``(file, rule, message)``
— deliberately line-insensitive, so edits elsewhere in a file do not
un-match a grandfathered finding — with a count per key so *additional*
occurrences of an already-baselined hazard still fail.

The file is JSON with sorted entries; regenerating it from an unchanged
tree is a no-op diff (``python -m repro.lint --write-baseline``).
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.lint.findings import Finding

_VERSION = 1

Key = tuple[str, str, str]  # (file, rule, message)


@dataclass
class Baseline:
    """Multiset of grandfathered finding keys."""

    entries: Counter = field(default_factory=Counter)

    # -- construction ------------------------------------------------------
    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        counts: Counter = Counter()
        for f in findings:
            counts[f.baseline_key] += 1
        return cls(counts)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        if data.get("version") != _VERSION:
            raise ValueError(
                f"unsupported simlint baseline version {data.get('version')!r} "
                f"in {path} (expected {_VERSION})")
        counts: Counter = Counter()
        for entry in data.get("entries", []):
            key: Key = (entry["file"], entry["rule"], entry["message"])
            counts[key] += int(entry.get("count", 1))
        return cls(counts)

    # -- persistence -------------------------------------------------------
    def save(self, path: Path) -> None:
        entries = [
            {"file": file, "rule": rule, "message": message, "count": count}
            for (file, rule, message), count in sorted(self.entries.items())
            if count > 0
        ]
        payload = {"version": _VERSION, "entries": entries}
        Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                              encoding="utf-8")

    # -- application -------------------------------------------------------
    def split(self, findings: Iterable[Finding]
              ) -> tuple[list[Finding], list[Finding]]:
        """Partition ``findings`` into (new, grandfathered).  Each
        baseline entry absorbs at most ``count`` findings; processing
        order is the findings' canonical sort order, so the split is
        deterministic."""
        budget = Counter(self.entries)
        new: list[Finding] = []
        old: list[Finding] = []
        for f in sorted(findings):
            if budget[f.baseline_key] > 0:
                budget[f.baseline_key] -= 1
                old.append(f)
            else:
                new.append(f)
        return new, old

    def stale_after(self, findings: Iterable[Finding]
                    ) -> list[tuple[Key, int]]:
        """Entries (key, unused-count) that absorbed fewer findings than
        their recorded count — debt that has been paid down but is still
        grandfathered.  ``findings`` must be the *pre-baseline* stream
        (kept + baselined); sorted by key for deterministic reports."""
        fired = Counter(f.baseline_key for f in findings)
        stale: list[tuple[Key, int]] = []
        for key, count in sorted(self.entries.items()):
            unused = count - min(count, fired.get(key, 0))
            if unused > 0:
                stale.append((key, unused))
        return stale

    def pruned(self, findings: Iterable[Finding]) -> "Baseline":
        """A ratcheted copy: each entry's count shrinks to the number of
        findings that still fire (never grows — pruning can only pay
        debt down, ``--write-baseline`` is the only way to add)."""
        fired = Counter(f.baseline_key for f in findings)
        counts: Counter = Counter()
        for key, count in self.entries.items():
            keep = min(count, fired.get(key, 0))
            if keep > 0:
                counts[key] = keep
        return Baseline(counts)

    def __len__(self) -> int:
        return sum(self.entries.values())
