"""simlint's rule framework and the built-in rule set.

Each rule encodes one invariant the reproduction's validity rests on
(see ``docs/architecture.md`` § Static analysis):

``nondet-source``
    Simulation code must draw every stochastic or time-like value from
    :class:`repro.common.rng.RngStreams` / ``env.now`` — wall clocks,
    the ``random`` module, un-seeded numpy generators, ``uuid``/
    ``os.urandom``, and address-dependent ``id()``/``hash()`` all break
    bit-identical replay.

``unordered-iter``
    Iterating a ``set``/``frozenset`` in an event-ordering-sensitive
    package makes event order depend on ``PYTHONHASHSEED``.

``resource-guard``
    ``Resource.acquire()``/``request()``-style admissions must be
    paired with ``release()``/``cancel()`` in a ``finally`` or
    ``except`` — the PR 1 slot-leak class.

``region-bypass``
    Writes to :class:`repro.memory.region.MemoryRegion` storage must go
    through the audited accessors; ``_store``/``_words`` and the NIC
    landing API are off-limits outside the memory/verbs layers.

``frozen-setattr``
    ``object.__setattr__`` on frozen dataclasses is only legitimate
    inside ``__post_init__``/``__setstate__``.

``engine-chokepoint``
    ``heapq``/``bisect`` (the calendar queue's building blocks) and the
    event-core implementation modules (``repro.sim._engine``,
    ``repro.sim._compiled``, ``repro.sim._ccore``) may only be imported
    inside the engine chokepoint — everything else selects its core
    through ``repro.sim.core`` / ``ALOCK_SIM_CORE``.

``guarded-trace-site``
    Flight-recorder ``.note()`` calls must sit inside an ``is not
    None`` guard on the recorder — the always-on ring is optional per
    cluster, and its <3% budget rests on flight-off paths paying a
    single attribute test.

Rules are pure functions of a :class:`~repro.lint.source.SourceFile`;
they never import or execute the code under analysis.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional, Sequence

from repro.lint.findings import ERROR, WARNING, Finding
from repro.lint.source import SourceFile, ancestors, parent_of

#: Packages forming the simulation core: everything here must be
#: deterministic given (spec, seed).
DEFAULT_SIM_PACKAGES: tuple[str, ...] = ("repro",)

#: Packages where *iteration order* feeds the event timeline or
#: user-visible output (counterexamples, traces, schedules).
DEFAULT_SENSITIVE_PACKAGES: tuple[str, ...] = (
    "repro.sim",
    "repro.rdma",
    "repro.locks",
    "repro.locktable",
    "repro.workload",
    "repro.memory",
    "repro.obs",
    # listed explicitly although repro.obs covers it: the flight ring's
    # event order IS user-visible output (post-mortem dumps are gated on
    # byte determinism), so it must never fall out of this set if the
    # obs package is ever split.
    "repro.obs.flight",
    # the event cores, listed explicitly although repro.sim covers them:
    # the compiled twin (_ccore/_compiled) and the pure reference
    # (_engine) define the event order itself, so they must never fall
    # out of this set if the sim package is ever split.
    "repro.sim._engine",
    "repro.sim._compiled",
    "repro.sim._ccore",
    "repro.verification",
    "repro.schedcheck",
    "repro.parallel",
)

#: The always-on flight recorder module (the one place ``note()`` is
#: defined, and the one module exempt from the guarded-trace-site rule).
FLIGHT_MODULE = "repro.obs.flight"


# --------------------------------------------------------------------------
# shared AST helpers
# --------------------------------------------------------------------------

def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None


def _subtree_contains(stmts: Sequence[ast.AST], target: ast.AST) -> bool:
    for stmt in stmts:
        for node in ast.walk(stmt):
            if node is target:
                return True
    return False


def _block_fields(node: ast.AST) -> Iterator[list[ast.stmt]]:
    for name in ("body", "orelse", "finalbody"):
        block = getattr(node, name, None)
        if isinstance(block, list):
            yield block
    for handler in getattr(node, "handlers", []) or []:
        yield handler.body


def enclosing_function(node: ast.AST) -> Optional[ast.AST]:
    for anc in ancestors(node):
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return anc
    return None


# --------------------------------------------------------------------------
# rule base
# --------------------------------------------------------------------------

class Rule:
    """Base class: subclasses set :attr:`rule_id` and implement
    :meth:`check`, yielding findings in source order (the engine re-sorts
    globally, so order here only needs to be deterministic)."""

    rule_id: str = ""
    description: str = ""
    default_severity: str = ERROR

    def check(self, sf: SourceFile) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, sf: SourceFile, node: ast.AST, message: str,
                severity: Optional[str] = None) -> Finding:
        return Finding(
            file=sf.display,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.rule_id,
            severity=severity or self.default_severity,
            message=message,
        )


# --------------------------------------------------------------------------
# rule 1: forbidden nondeterminism sources
# --------------------------------------------------------------------------

_WALLCLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.clock_gettime",
})

#: last-two path segments of banned datetime constructors.
_DATETIME_TAILS = frozenset({
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
})

_ENTROPY_CALLS = frozenset({
    "uuid.uuid1", "uuid.uuid4", "os.urandom", "os.getrandom",
})

_NUMPY_ALIASES = frozenset({"np", "numpy"})


class NondetSourceRule(Rule):
    """Nondeterminism sources outside :class:`RngStreams` in sim code."""

    rule_id = "nondet-source"
    description = ("simulation code must derive randomness from RngStreams "
                   "and time from env.now — never the wall clock, the "
                   "global random module, or process addresses")

    def __init__(self, sim_packages: Iterable[str] = DEFAULT_SIM_PACKAGES):
        self.sim_packages = tuple(sim_packages)

    def check(self, sf: SourceFile) -> Iterator[Finding]:
        if not sf.in_package(*self.sim_packages):
            return
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            sf, node,
                            "import of the global 'random' module; draw from "
                            "RngStreams (repro.common.rng) instead")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.finding(
                        sf, node,
                        "import from the global 'random' module; draw from "
                        "RngStreams (repro.common.rng) instead")
            elif isinstance(node, ast.Call):
                yield from self._check_call(sf, node)

    def _check_call(self, sf: SourceFile, node: ast.Call) -> Iterator[Finding]:
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("id", "hash"):
            yield self.finding(
                sf, node,
                f"'{func.id}()' depends on process memory layout or "
                f"PYTHONHASHSEED; not reproducible across runs",
                severity=WARNING)
            return
        name = dotted_name(func)
        if name is None:
            return
        parts = name.split(".")
        if parts[0] == "random":
            yield self.finding(
                sf, node,
                f"'{name}()' uses the global random module; draw from an "
                f"RngStreams stream instead")
        elif parts[0] == "secrets":
            yield self.finding(
                sf, node, f"'{name}()' draws OS entropy; not reproducible")
        elif name in _WALLCLOCK_CALLS:
            yield self.finding(
                sf, node,
                f"'{name}()' reads the wall clock; simulation time is "
                f"env.now")
        elif name in _ENTROPY_CALLS:
            yield self.finding(
                sf, node, f"'{name}()' draws OS entropy; not reproducible")
        elif len(parts) >= 2 and tuple(parts[-2:]) in _DATETIME_TAILS:
            yield self.finding(
                sf, node,
                f"'{name}()' reads the wall clock; simulation time is "
                f"env.now")
        elif parts[-1] == "default_rng" and len(parts) >= 2 \
                and parts[-2] == "random":
            if not node.args or (isinstance(node.args[0], ast.Constant)
                                 and node.args[0].value is None):
                yield self.finding(
                    sf, node,
                    "un-seeded np.random.default_rng(); seed it via "
                    "derive_seed/RngStreams")
        elif (len(parts) == 3 and parts[0] in _NUMPY_ALIASES
              and parts[1] == "random" and parts[2] != "default_rng"
              and parts[2] not in ("Generator", "SeedSequence")):
            yield self.finding(
                sf, node,
                f"'{name}()' uses numpy's global RNG state; use a "
                f"Generator from RngStreams")


# --------------------------------------------------------------------------
# rule 2: iteration over unordered collections
# --------------------------------------------------------------------------

_SET_ANNOTATION_TAILS = frozenset({
    "set", "frozenset", "Set", "FrozenSet", "MutableSet", "AbstractSet",
})

#: builtins that materialise their argument's iteration order.
_ORDER_MATERIALISERS = frozenset({"list", "tuple", "deque", "enumerate", "iter"})


def _annotation_is_set(ann: Optional[ast.AST]) -> bool:
    if ann is None:
        return False
    if isinstance(ann, ast.Subscript):
        ann = ann.value
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        # string annotation: match on its head, e.g. "set[int]"
        head = ann.value.split("[", 1)[0].strip()
        return head.split(".")[-1] in _SET_ANNOTATION_TAILS
    name = dotted_name(ann)
    return name is not None and name.split(".")[-1] in _SET_ANNOTATION_TAILS


def _value_is_set_constructor(value: Optional[ast.AST]) -> bool:
    if isinstance(value, (ast.Set, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        return dotted_name(value.func) in ("set", "frozenset")
    return False


def _target_key(target: ast.AST) -> Optional[str]:
    if isinstance(target, ast.Name):
        return target.id
    if (isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"):
        return "self." + target.attr
    return None


class UnorderedIterRule(Rule):
    """Set iteration in event-ordering-sensitive packages."""

    rule_id = "unordered-iter"
    description = ("iterating a set in an ordering-sensitive module makes "
                   "event order depend on PYTHONHASHSEED; sort it or use "
                   "an insertion-ordered container")

    def __init__(self,
                 sensitive_packages: Iterable[str] = DEFAULT_SENSITIVE_PACKAGES):
        self.sensitive_packages = tuple(sensitive_packages)

    def check(self, sf: SourceFile) -> Iterator[Finding]:
        if not sf.in_package(*self.sensitive_packages):
            return
        module_scope = self._scope_names(sf.tree.body)
        yield from self._walk(sf, sf.tree, [module_scope])

    # -- scope inference ---------------------------------------------------
    def _scope_names(self, body: Sequence[ast.stmt]) -> dict[str, bool]:
        """Names (and ``self.x`` keys) bound to set-typed values by the
        statements of one scope, nested suites included but nested
        def/class bodies excluded."""
        names: dict[str, bool] = {}

        def visit(stmts: Sequence[ast.stmt]) -> None:
            for stmt in stmts:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    continue
                if isinstance(stmt, ast.Assign) and \
                        _value_is_set_constructor(stmt.value):
                    for tgt in stmt.targets:
                        key = _target_key(tgt)
                        if key:
                            names[key] = True
                elif isinstance(stmt, ast.AnnAssign):
                    key = _target_key(stmt.target)
                    if key and (_annotation_is_set(stmt.annotation)
                                or _value_is_set_constructor(stmt.value)):
                        names[key] = True
                for block in _block_fields(stmt):
                    visit(block)

        visit(body)
        return names

    def _class_self_names(self, cls: ast.ClassDef) -> dict[str, bool]:
        """``self.x`` set-typed attributes bound anywhere in the class's
        methods — so iterating ``self.x`` in *another* method is caught."""
        names: dict[str, bool] = {}
        for stmt in cls.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for key, val in self._scope_names(stmt.body).items():
                    if key.startswith("self."):
                        names[key] = val
        return names

    # -- detection ---------------------------------------------------------
    def _is_setlike(self, expr: ast.AST, scopes: list[dict[str, bool]]) -> bool:
        if _value_is_set_constructor(expr):
            return True
        key = _target_key(expr)
        if key is None:
            return False
        return any(key in scope for scope in scopes)

    def _walk(self, sf: SourceFile, node: ast.AST,
              scopes: list[dict[str, bool]]) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._walk(
                    sf, child, scopes + [self._scope_names(child.body)])
                continue
            if isinstance(child, ast.ClassDef):
                yield from self._walk(
                    sf, child, scopes + [self._class_self_names(child)])
                continue
            if isinstance(child, ast.For) and \
                    self._is_setlike(child.iter, scopes):
                yield self._report(sf, child.iter)
            elif isinstance(child, (ast.ListComp, ast.SetComp, ast.DictComp,
                                    ast.GeneratorExp)):
                for gen in child.generators:
                    if self._is_setlike(gen.iter, scopes):
                        yield self._report(sf, gen.iter)
            elif isinstance(child, ast.Call):
                func = dotted_name(child.func)
                if (func in _ORDER_MATERIALISERS and child.args
                        and self._is_setlike(child.args[0], scopes)):
                    yield self._report(sf, child, via=func)
            yield from self._walk(sf, child, scopes)

    def _report(self, sf: SourceFile, node: ast.AST,
                via: Optional[str] = None) -> Finding:
        how = f"'{via}()' materialises" if via else "iteration materialises"
        return self.finding(
            sf, node,
            f"{how} set order in an event-ordering-sensitive module; "
            f"wrap in sorted() or keep an insertion-ordered list/dict")


# --------------------------------------------------------------------------
# rule 3: unguarded admission (the PR 1 slot-leak class)
# --------------------------------------------------------------------------

_ADMISSION_METHODS = frozenset({"acquire", "request"})
_RELEASE_METHODS = frozenset({"release", "cancel"})


def _has_release_call(stmts: Sequence[ast.AST]) -> bool:
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr in _RELEASE_METHODS:
                return True
    return False


class ResourceGuardRule(Rule):
    """Admission calls without a ``finally``/``except`` release path."""

    rule_id = "resource-guard"
    description = ("an acquire()/request() admission must release/cancel on "
                   "every exit path (try/finally or an except handler), or "
                   "the slot leaks when the waiter is interrupted")

    #: modules that implement the admission protocol itself.
    exempt_modules = ("repro.sim.resources",)

    def __init__(self, sim_packages: Iterable[str] = DEFAULT_SIM_PACKAGES):
        self.sim_packages = tuple(sim_packages)

    def check(self, sf: SourceFile) -> Iterator[Finding]:
        if not sf.in_package(*self.sim_packages):
            return
        if sf.module in self.exempt_modules:
            return
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr in _ADMISSION_METHODS:
                if not self._guarded(node):
                    yield self.finding(
                        sf, node,
                        f"'.{node.func.attr}()' admission with no "
                        f"release()/cancel() on the failure path; wrap the "
                        f"held region in try/finally (or cancel in an "
                        f"except handler)")

    def _guarded(self, call: ast.Call) -> bool:
        # (a) inside the try-body of a Try whose finally/handlers release.
        for anc in ancestors(call):
            if isinstance(anc, ast.Try) and _subtree_contains(anc.body, call):
                if _has_release_call(anc.finalbody):
                    return True
                if any(_has_release_call(h.body) for h in anc.handlers):
                    return True
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break
        # (b) a later statement in an enclosing block is such a Try.
        node: ast.AST = call
        for anc in ancestors(call):
            for block in _block_fields(anc):
                if node in block:
                    after = block[block.index(node) + 1:]
                    for stmt in after:
                        if isinstance(stmt, ast.Try) and (
                                _has_release_call(stmt.finalbody)
                                or any(_has_release_call(h.body)
                                       for h in stmt.handlers)):
                            return True
            node = anc
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break
        return False


# --------------------------------------------------------------------------
# rule 4: region writes that bypass the race auditor
# --------------------------------------------------------------------------

class RegionBypassRule(Rule):
    """Raw region-buffer writes outside the memory/verbs layers."""

    rule_id = "region-bypass"
    description = ("MemoryRegion storage may only be written through the "
                   "audited accessors; _store/_words are region-internal "
                   "and the remote_* landing API belongs to the verbs layer")

    #: the accessor implementation itself.
    region_modules = ("repro.memory.region",)
    #: where remote ops legitimately land (the simulated NIC/verbs path).
    verbs_modules = ("repro.memory.region", "repro.rdma.network")

    _REMOTE_API = frozenset({
        "remote_read", "remote_write", "remote_rmw_read", "remote_rmw_commit",
    })

    def __init__(self, sim_packages: Iterable[str] = DEFAULT_SIM_PACKAGES):
        self.sim_packages = tuple(sim_packages)

    def check(self, sf: SourceFile) -> Iterator[Finding]:
        if not sf.in_package(*self.sim_packages):
            return
        in_region = sf.module in self.region_modules
        in_verbs = sf.module in self.verbs_modules
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.Attribute) and node.attr == "_words" \
                    and not in_region:
                yield self.finding(
                    sf, node,
                    "direct '._words' buffer access bypasses the "
                    "RaceAuditor; use read/write/cas/faa (or peek for "
                    "oracle reads)")
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute):
                attr = node.func.attr
                if attr == "_store" and not in_region:
                    yield self.finding(
                        sf, node,
                        "'._store()' bypasses the RaceAuditor; use the "
                        "audited write/cas/faa accessors")
                elif attr in self._REMOTE_API and not in_verbs:
                    yield self.finding(
                        sf, node,
                        f"'.{attr}()' is the NIC landing API; issuing it "
                        f"outside repro.rdma.network fabricates remote "
                        f"traffic with no timing or audit window")


# --------------------------------------------------------------------------
# rule 5: frozen-dataclass mutation outside __post_init__
# --------------------------------------------------------------------------

class FrozenSetattrRule(Rule):
    """``object.__setattr__`` outside ``__post_init__``/``__setstate__``."""

    rule_id = "frozen-setattr"
    description = ("object.__setattr__ defeats frozen-dataclass immutability;"
                   " it is only legitimate during __post_init__/__setstate__")

    _ALLOWED_FUNCS = frozenset({"__post_init__", "__setstate__"})

    def check(self, sf: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.Call) and \
                    dotted_name(node.func) == "object.__setattr__":
                func = enclosing_function(node)
                if func is None or func.name not in self._ALLOWED_FUNCS:
                    where = f"'{func.name}'" if func else "module scope"
                    yield self.finding(
                        sf, node,
                        f"object.__setattr__ in {where} mutates a frozen "
                        f"dataclass after construction; restrict it to "
                        f"__post_init__/__setstate__ or use "
                        f"dataclasses.replace()")


# --------------------------------------------------------------------------
# rule 6: process-boundary discipline (the parallel engine's contract)
# --------------------------------------------------------------------------

#: the one module allowed to construct process pools: everything that
#: crosses a process boundary funnels through its audited chokepoint.
_SPAWN_CHOKEPOINTS = frozenset({"repro.parallel.engine"})

#: the one module allowed to (de)serialize result blobs: the sweep
#: cache's store, where corruption-as-miss and the boundary re-audit
#: live.  Pickled bytes are a process boundary stretched over time.
_SERIALIZATION_CHOKEPOINTS = frozenset({"repro.parallel.store"})

_POOL_IMPORTS = frozenset({"ProcessPoolExecutor", "multiprocessing"})

_SERIALIZATION_MODULES = frozenset({"pickle", "cPickle", "marshal", "shelve",
                                    "dill", "cloudpickle"})


def _decorator_names(func: ast.AST) -> set[str]:
    names = set()
    for dec in getattr(func, "decorator_list", ()):  # bare name or attr
        name = dotted_name(dec)
        if name is not None:
            names.add(name.rsplit(".", 1)[-1])
    return names


class ProcessBoundaryRule(Rule):
    """Everything shipped to a worker process must be auditable.

    Four module-local checks inside the sensitive packages:

    * process pools (``ProcessPoolExecutor`` / ``multiprocessing``) may
      only be touched by the engine chokepoint module — sweep shards and
      experiment prefetches all funnel through its single, audited
      submit loop (orphan-free shutdown, failed-chunk isolation);
    * blob (de)serializers (``pickle``/``marshal``/``shelve``/…) may
      only be touched by the store chokepoint module — serialized cache
      entries are a process boundary stretched over time, and the store
      is where corruption-as-miss handling and the post-load boundary
      re-audit are centralized;
    * a ``@worker_entry`` function must be defined at module top level:
      nested or method defs are not picklable by reference and would
      fail only at runtime, on the first parallel run;
    * ``<pool>.submit(fn, ...)`` where ``fn`` is defined in the same
      module requires ``fn`` to be marked ``@worker_entry`` — the marker
      is what `repro.parallel.cells.check_boundary_value` audits stick to.
    """

    rule_id = "process-boundary"
    description = ("process fan-out must go through repro.parallel.engine, "
                   "cache (de)serialization through repro.parallel.store, "
                   "and worker entry points must be module-level functions "
                   "marked @worker_entry")

    def __init__(self,
                 sensitive_packages: Iterable[str] = DEFAULT_SENSITIVE_PACKAGES):
        self.sensitive_packages = tuple(sensitive_packages)

    def check(self, sf: SourceFile) -> Iterator[Finding]:
        if not sf.in_package(*self.sensitive_packages):
            return
        at_chokepoint = sf.module in _SPAWN_CHOKEPOINTS
        at_store = sf.module in _SERIALIZATION_CHOKEPOINTS
        marked: set[str] = set()
        unmarked_defs: set[str] = set()
        for node in sf.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if "worker_entry" in _decorator_names(node):
                    marked.add(node.name)
                else:
                    unmarked_defs.add(node.name)
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root == "multiprocessing" and not at_chokepoint:
                        yield self.finding(
                            sf, node,
                            "direct multiprocessing use outside the engine "
                            "chokepoint; spawn workers via "
                            "repro.parallel.engine so shutdown and "
                            "failed-chunk isolation stay centralized")
                    elif root in _SERIALIZATION_MODULES and not at_store:
                        yield self.finding(
                            sf, node,
                            "blob (de)serialization outside the store "
                            "chokepoint; round-trip cache entries through "
                            "repro.parallel.store so corruption-as-miss and "
                            "the boundary re-audit stay centralized")
            elif isinstance(node, ast.ImportFrom):
                mod = node.module or ""
                pulled = {a.name for a in node.names}
                if not at_chokepoint and (
                        mod.split(".")[0] == "multiprocessing"
                        or pulled & _POOL_IMPORTS):
                    yield self.finding(
                        sf, node,
                        "process-pool import outside the engine chokepoint; "
                        "spawn workers via repro.parallel.engine so shutdown "
                        "and failed-chunk isolation stay centralized")
                elif mod.split(".")[0] in _SERIALIZATION_MODULES \
                        and not at_store:
                    yield self.finding(
                        sf, node,
                        "blob (de)serialization outside the store "
                        "chokepoint; round-trip cache entries through "
                        "repro.parallel.store so corruption-as-miss and "
                        "the boundary re-audit stay centralized")
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if "worker_entry" in _decorator_names(node) and \
                        enclosing_function(node) is not None:
                    yield self.finding(
                        sf, node,
                        f"@worker_entry function '{node.name}' is nested; "
                        f"worker entry points must be module-level defs "
                        f"(picklable by reference) or the pool fails at "
                        f"runtime on the first parallel run")
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr == "submit" and node.args:
                first = node.args[0]
                if isinstance(first, ast.Name) and first.id in unmarked_defs \
                        and first.id not in marked:
                    yield self.finding(
                        sf, node,
                        f"'{first.id}' is submitted to a pool but not marked "
                        f"@worker_entry; the marker is the contract that its "
                        f"arguments/results pass check_boundary_value")


# --------------------------------------------------------------------------
# rule 7: scheduler internals stay inside the engine chokepoint
# --------------------------------------------------------------------------

#: the modules that ARE the event core: the pure engine, the compiled
#: twin's Python shell, and the selector that picks between them.
_ENGINE_CHOKEPOINTS = frozenset({
    "repro.sim.core",
    "repro.sim._engine",
    "repro.sim._compiled",
})

#: stdlib priority-queue machinery — the calendar queue's building
#: blocks.  Any use outside the engine is a second scheduler.
_SCHEDULER_IMPORTS = frozenset({"heapq", "bisect"})

#: the core implementation modules; importing one directly pins a core
#: and bypasses the ``ALOCK_SIM_CORE`` selection in ``repro.sim.core``.
_ENGINE_INTERNAL_MODULES = frozenset({
    "repro.sim._engine",
    "repro.sim._compiled",
    "repro.sim._ccore",
})


class EngineChokepointRule(Rule):
    """Scheduler internals are confined to the event-core modules.

    Two module-local checks inside the sensitive packages:

    * ``heapq``/``bisect`` may only be imported by the engine modules —
      the calendar queue owns event ordering, and a second priority
      queue over ``(time, seq)`` tuples elsewhere is a fork of the
      scheduler that equivalence suites cannot see;
    * the core implementation modules (``repro.sim._engine``,
      ``repro.sim._compiled``, ``repro.sim._ccore``) may only be
      imported by each other and the selector ``repro.sim.core`` —
      importing one directly pins a core, silently bypassing
      ``ALOCK_SIM_CORE`` and desynchronizing from what every other
      module in the process is running.
    """

    rule_id = "engine-chokepoint"
    description = ("heapq/bisect and the event-core implementation modules "
                   "may only be imported inside the repro.sim engine "
                   "chokepoint — everything else goes through "
                   "repro.sim.core's ALOCK_SIM_CORE selection")

    def __init__(self,
                 sensitive_packages: Iterable[str] = DEFAULT_SENSITIVE_PACKAGES):
        self.sensitive_packages = tuple(sensitive_packages)

    def check(self, sf: SourceFile) -> Iterator[Finding]:
        if not sf.in_package(*self.sensitive_packages):
            return
        at_engine = sf.module in _ENGINE_CHOKEPOINTS
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in _SCHEDULER_IMPORTS and not at_engine:
                        yield self.finding(
                            sf, node,
                            f"'{alias.name}' import outside the engine "
                            f"chokepoint; the calendar queue in "
                            f"repro.sim owns event ordering — a second "
                            f"priority queue is a scheduler fork the "
                            f"equivalence suites cannot see")
                    elif alias.name in _ENGINE_INTERNAL_MODULES \
                            and not at_engine:
                        yield self.finding(
                            sf, node,
                            f"direct import of '{alias.name}' pins an event "
                            f"core; import from repro.sim.core so "
                            f"ALOCK_SIM_CORE keeps selecting one core for "
                            f"the whole process")
            elif isinstance(node, ast.ImportFrom):
                mod = node.module or ""
                if mod.split(".")[0] in _SCHEDULER_IMPORTS and not at_engine:
                    yield self.finding(
                        sf, node,
                        f"'{mod}' import outside the engine chokepoint; "
                        f"the calendar queue in repro.sim owns event "
                        f"ordering — a second priority queue is a "
                        f"scheduler fork the equivalence suites cannot see")
                elif (mod in _ENGINE_INTERNAL_MODULES
                      or {f"repro.sim.{a.name}" if mod == "repro.sim"
                          else "" for a in node.names}
                      & _ENGINE_INTERNAL_MODULES) and not at_engine:
                    yield self.finding(
                        sf, node,
                        f"direct import of an event-core implementation "
                        f"module pins a core; import from repro.sim.core "
                        f"so ALOCK_SIM_CORE keeps selecting one core for "
                        f"the whole process")


# --------------------------------------------------------------------------
# rule 8: flight-recorder call sites must be guarded (the <3% budget)
# --------------------------------------------------------------------------

#: attribute names under which a cluster/context/env exposes its flight
#: recorder.  An expression ending in one of these is "flight-ish".
_FLIGHT_ATTRS = frozenset({"flight", "_flight"})


def _is_flight_expr(node: ast.AST) -> bool:
    name = dotted_name(node)
    return name is not None and name.split(".")[-1] in _FLIGHT_ATTRS


def _guard_keys(test: ast.AST) -> set[str]:
    """Dotted names proven non-None by ``test`` (``x is not None``
    compares, possibly conjoined with ``and``)."""
    keys: set[str] = set()
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        for value in test.values:
            keys |= _guard_keys(value)
    elif isinstance(test, ast.Compare) and len(test.ops) == 1 \
            and isinstance(test.ops[0], ast.IsNot) \
            and len(test.comparators) == 1 \
            and isinstance(test.comparators[0], ast.Constant) \
            and test.comparators[0].value is None:
        key = dotted_name(test.left)
        if key:
            keys.add(key)
    return keys


class GuardedTraceSiteRule(Rule):
    """``.note()`` on a flight recorder without an ``is not None`` guard.

    The recorder is optional (``Cluster(flight=False)``, raw
    ``Environment`` runs) and its budget rests on call sites paying a
    single attribute test when it is off — the idiom is::

        fl = self._flight
        if fl is not None:
            fl.note(...)

    Calling ``.note()`` on a flight-ish receiver (an expression ending
    in ``flight``/``_flight``, or a local bound from one) outside such a
    guard either crashes on flight-off runs or hides an unconditional
    recording cost; both are one missing ``if`` away from every hot
    path, which is why this is a lint rule and not a convention.
    """

    rule_id = "guarded-trace-site"
    description = ("flight-recorder .note() calls must sit inside an "
                   "'is not None' guard on the recorder — the recorder is "
                   "optional and its <3% budget rests on flight-off paths "
                   "paying one attribute test")

    #: the recorder implementation itself.
    exempt_modules = (FLIGHT_MODULE,)

    def __init__(self, sim_packages: Iterable[str] = DEFAULT_SIM_PACKAGES):
        self.sim_packages = tuple(sim_packages)

    def check(self, sf: SourceFile) -> Iterator[Finding]:
        if not sf.in_package(*self.sim_packages):
            return
        if sf.module in self.exempt_modules:
            return
        # names bound from a flight-ish expression anywhere in the file
        # (per-file, not per-scope: cheap, deterministic, and a false
        # positive only if someone reuses 'fl' for a non-recorder — at
        # which point the name itself is the bug)
        flight_names: set[str] = set()
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.Assign) and _is_flight_expr(node.value):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        flight_names.add(tgt.id)
        for node in ast.walk(sf.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "note"):
                continue
            recv = node.func.value
            key = dotted_name(recv)
            if key is None:
                continue
            if not (_is_flight_expr(recv) or key in flight_names):
                continue
            if not self._guarded(node, key):
                yield self.finding(
                    sf, node,
                    f"'{key}.note()' outside an 'if {key} is not None' "
                    f"guard; the flight recorder is optional — guard the "
                    f"call (and bind 'fl = ..._flight' once) so flight-off "
                    f"runs pay a single attribute test")

    def _guarded(self, call: ast.Call, key: str) -> bool:
        for anc in ancestors(call):
            if isinstance(anc, ast.If) and key in _guard_keys(anc.test) \
                    and _subtree_contains(anc.body, call):
                return True
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break
        return False


# --------------------------------------------------------------------------
# registry
# --------------------------------------------------------------------------

def default_rules(
        sim_packages: Iterable[str] = DEFAULT_SIM_PACKAGES,
        sensitive_packages: Iterable[str] = DEFAULT_SENSITIVE_PACKAGES,
) -> tuple[Rule, ...]:
    """The shipped rule set, in stable registry order."""
    return (
        NondetSourceRule(sim_packages),
        UnorderedIterRule(sensitive_packages),
        ResourceGuardRule(sim_packages),
        RegionBypassRule(sim_packages),
        FrozenSetattrRule(),
        ProcessBoundaryRule(sensitive_packages),
        EngineChokepointRule(sensitive_packages),
        GuardedTraceSiteRule(sim_packages),
    )


ALL_RULE_IDS: tuple[str, ...] = tuple(r.rule_id for r in default_rules())
