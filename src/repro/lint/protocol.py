"""deep-protocol: verb-order state machines over the relinquish CAS.

The MCS-style release protocol (paper Algorithm 3) has a three-state
core: ``OWNED → (CAS tail, expect own descriptor, store 0)`` and then

* **success** — the queue was empty; the tail word is relinquished and
  this thread must not touch it again (a later read races the next
  enqueuer's swap);
* **failure** — a successor is enqueued (or mid-link); the releaser now
  *owes* a handoff: it must write the successor's budget/locked word
  before finishing, or the successor spins forever on a word nobody
  will write (the ``skip_budget_wait`` seeded bug, made schedule-
  dependent by the swap-to-link window).

Three checks, all flow-sensitive over the shared CFG:

P1 (wait-predicate completeness, reported at the wait call)
    ``ctx.wait_local_cond([w1, w2], check)`` parks on writes to *all*
    the listed words; if ``check`` never reads one of them, a wakeup on
    it cannot change the decision and the sleeper can hang — exactly
    the ``no_victim_check`` seeded bug, where the Peterson waiter
    watches the victim word it never reads.

P2 (handover obligation, reported at the escaping exit)
    After the failed-relinquish branch, every normal exit must be
    preceded by a *store* effect (a write/CAS/FAA verb, local or
    remote, possibly inside a helper — effect summaries carry it).

P3 (use-after-relinquish, reported at the offending verb)
    After the successful-relinquish branch, no verb may address the
    relinquished word again.

The relinquish site is recognized syntactically: an assignment
``v = [yield from] <cas|r_cas>(ptr, expected, 0)`` whose stored value
is literally zero, followed by a branch comparing ``v`` against the
expected expression.  Branch refinement happens on the CFG's
TRUE/FALSE edges, so arbitrarily nested handling code is tracked.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.lint.dataflow import (
    EXC, FALSE, TRUE, Cfg, CfgNode, ForwardAnalysis, run_forward,
)
from repro.lint.deep import DeepContext, DeepRule
from repro.lint.findings import Finding
from repro.lint.ir import FunctionInfo, attr_tail, expr_text, name_tails

_CAS_TAILS = frozenset({"cas", "r_cas"})
_VERB_TAILS = frozenset({"read", "write", "cas", "faa",
                         "r_read", "r_write", "r_cas", "r_faa"})
_WAIT_COND_TAILS = frozenset({"wait_local_cond"})


@dataclass(frozen=True)
class RelinquishSite:
    """One ``v = cas(ptr, expected, 0)`` statement."""

    site_id: int
    var: str            #: name the CAS result is bound to
    ptr_text: str       #: spelled pointer argument (``self.tail_r_ptr``)
    expected_text: str  #: spelled expected argument (``desc.ptr``)
    line: int


def _unwrap_call(value: ast.AST) -> Optional[ast.Call]:
    if isinstance(value, (ast.Yield, ast.YieldFrom, ast.Await)) \
            and value.value is not None:
        value = value.value
    return value if isinstance(value, ast.Call) else None


def find_relinquish_sites(fn: FunctionInfo) -> List[RelinquishSite]:
    sites: List[RelinquishSite] = []
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        call = _unwrap_call(node.value)
        if call is None or attr_tail(call.func) not in _CAS_TAILS:
            continue
        if len(call.args) < 3:
            continue
        ptr_text = expr_text(call.args[0])
        expected_text = expr_text(call.args[1])
        stored = call.args[2]
        if ptr_text is None or expected_text is None:
            continue
        if not (isinstance(stored, ast.Constant) and stored.value == 0):
            continue
        sites.append(RelinquishSite(
            site_id=len(sites), var=target.id, ptr_text=ptr_text,
            expected_text=expected_text, line=node.lineno))
    return sites


def _branch_site(test: ast.AST,
                 sites: List[RelinquishSite]) -> Optional[Tuple[RelinquishSite, bool]]:
    """Match ``v != expected`` / ``v == expected`` against a site;
    returns (site, true_edge_means_failed)."""
    if not (isinstance(test, ast.Compare) and len(test.ops) == 1
            and isinstance(test.left, ast.Name)):
        return None
    op = test.ops[0]
    if not isinstance(op, (ast.NotEq, ast.Eq)):
        return None
    other = expr_text(test.comparators[0])
    if other is None:
        return None
    for site in sites:
        if site.var == test.left.id and site.expected_text == other:
            return site, isinstance(op, ast.NotEq)
    return None


def _walk_heads(node: CfgNode) -> Iterator[ast.AST]:
    for head in node.heads:
        yield from ast.walk(head)


# window-state tokens
_OBLIG = "oblig"   #: failed relinquish: handoff owed
_RELQ = "relq"     #: successful relinquish: ptr is no longer ours

WindowState = FrozenSet[Tuple[str, int]]


class _WindowAnalysis(ForwardAnalysis):
    """May-analysis of open handover obligations and relinquished
    pointers.  Join is union (a token on *any* path must be honoured);
    a store effect discharges every open obligation."""

    def __init__(self, ctx: DeepContext, fn: FunctionInfo,
                 sites: List[RelinquishSite]):
        self.ctx = ctx
        self.fn = fn
        self.sites = sites

    def initial(self) -> WindowState:
        return frozenset()

    def join(self, a: WindowState, b: WindowState) -> WindowState:
        return a | b

    def transfer(self, node: CfgNode, state: WindowState) -> WindowState:
        if not node.heads or not state:
            return state
        if any(tok == _OBLIG for tok, _ in state) and \
                any(self.ctx.effects.stmt_effects(h, self.fn).writes
                    for h in node.heads):
            state = frozenset((tok, sid) for tok, sid in state
                              if tok != _OBLIG)
        return state

    def transfer_edge(self, node: CfgNode, kind: str,
                      pre: WindowState, post: WindowState) -> WindowState:
        if kind == EXC:
            return pre
        if kind in (TRUE, FALSE) and node.heads:
            match = _branch_site(node.heads[0], self.sites)
            if match is not None:
                site, true_is_failed = match
                failed_edge = (kind == TRUE) == true_is_failed
                token = _OBLIG if failed_edge else _RELQ
                return post | {(token, site.site_id)}
        return post


def relinquish_windows(ctx: DeepContext, fn: FunctionInfo
                       ) -> Tuple[List[RelinquishSite], Cfg,
                                  Dict[int, WindowState]]:
    """(sites, cfg, state-before-each-node) for ``fn``; cached on the
    context so deep-protocol and deep-blocking share one solve."""
    key = ("windows", fn.qualname)
    cached = ctx.cache.get(key)
    if cached is None:
        sites = find_relinquish_sites(fn)
        cfg = ctx.cfg(fn)
        if sites:
            before = run_forward(cfg, _WindowAnalysis(ctx, fn, sites))
        else:
            before = {}
        cached = (sites, cfg, before)
        ctx.cache[key] = cached
    return cached  # type: ignore[return-value]


def predicate_node(fn: FunctionInfo, expr: ast.AST) -> Optional[ast.AST]:
    """Resolve a wait predicate argument to its body-bearing node: a
    lambda inline, or a nested ``def`` of the same name inside ``fn``."""
    if isinstance(expr, ast.Lambda):
        return expr
    if isinstance(expr, ast.Name):
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node is not fn.node and node.name == expr.id:
                return node
    return None


RULE_ID = "deep-protocol"


class DeepProtocolRule(DeepRule):
    rule_id = RULE_ID
    description = ("paper-legal verb orders: complete wait predicates, "
                   "discharged handovers, no use-after-relinquish")

    def check_project(self, ctx: DeepContext) -> Iterator[Finding]:
        for fn in ctx.checked_functions():
            yield from self._check_wait_predicates(ctx, fn)
            yield from self._check_windows(ctx, fn)

    # -- P1 ----------------------------------------------------------------
    def _check_wait_predicates(self, ctx: DeepContext,
                               fn: FunctionInfo) -> Iterator[Finding]:
        for call in ctx.index.calls_in(fn):
            if attr_tail(call.func) not in _WAIT_COND_TAILS:
                continue
            if len(call.args) < 2 or not isinstance(
                    call.args[0], (ast.List, ast.Tuple)):
                continue
            pred = predicate_node(fn, call.args[1])
            if pred is None:
                continue
            body = pred.body
            reads = name_tails(ast.Module(body=body, type_ignores=[])
                               if isinstance(body, list) else body)
            pred_name = getattr(pred, "name", "<lambda>")
            for elt in call.args[0].elts:
                text = expr_text(elt)
                tail = attr_tail(elt)
                if tail is None or tail in reads:
                    continue
                yield ctx.finding(
                    fn, call.lineno, call.col_offset, self.rule_id,
                    self.default_severity,
                    f"watched word {text or tail} is never read by wait "
                    f"predicate {pred_name}() — a wakeup on it cannot "
                    f"change the decision, so the waiter can sleep through "
                    f"the very transition it is parked on")

    # -- P2 / P3 -----------------------------------------------------------
    def _check_windows(self, ctx: DeepContext,
                       fn: FunctionInfo) -> Iterator[Finding]:
        sites, cfg, before = relinquish_windows(ctx, fn)
        if not sites:
            return
        analysis = _WindowAnalysis(ctx, fn, sites)
        # P2: obligation still open at a normal exit.
        for src, dst, kind in cfg.edges():
            if dst != cfg.exit or src not in before:
                continue
            node = cfg.node(src)
            pre = before[src]
            post = analysis.transfer(node, pre)
            carried = analysis.transfer_edge(node, kind, pre, post)
            for tok, sid in sorted(carried):
                if tok != _OBLIG:
                    continue
                site = sites[sid]
                yield ctx.finding(
                    fn, node.line, 0, self.rule_id, self.default_severity,
                    f"handover left undischarged: the failed relinquish "
                    f"CAS of {site.ptr_text} (line {site.line}) means a "
                    f"successor is enqueued, but this exit path never "
                    f"writes the handoff word — the successor spins on a "
                    f"word nobody will write")
        # P3: verb on a relinquished pointer.
        for idx in sorted(before):
            node = cfg.node(idx)
            if not node.heads:
                continue
            relinquished = {sites[sid].ptr_text
                            for tok, sid in before[idx] if tok == _RELQ}
            if not relinquished:
                continue
            for call in _walk_heads(node):
                if not isinstance(call, ast.Call):
                    continue
                if attr_tail(call.func) not in _VERB_TAILS or not call.args:
                    continue
                ptr = expr_text(call.args[0])
                if ptr in relinquished:
                    yield ctx.finding(
                        fn, call.lineno, call.col_offset, self.rule_id,
                        self.default_severity,
                        f"verb touches {ptr} after the CAS that "
                        f"relinquished it — the word now belongs to the "
                        f"next enqueuer and this access races its swap")


# re-exported for deep-blocking (B3 shares the obligation window)
__all__ = [
    "DeepProtocolRule", "RelinquishSite", "find_relinquish_sites",
    "relinquish_windows", "predicate_node", "RULE_ID",
]
