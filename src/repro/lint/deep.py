"""Deep-pass scaffolding: project context, rule base, registry.

Per-file rules (:mod:`repro.lint.rules`) see one AST at a time.  Deep
rules see the whole tree through a :class:`DeepContext` — the
:class:`~repro.lint.ir.ProjectIndex`, the
:class:`~repro.lint.effects.EffectEngine`, the set of functions in
scope, and a shared CFG cache — and report ordinary
:class:`~repro.lint.findings.Finding` objects, so suppression comments
and the baseline apply to them unchanged.

Scope
    The deep rules police the **lock protocol surface**: every method of
    every class whose base chain names ``DistributedLock`` (matched by
    name, so fixture files parsed standalone still qualify), plus the
    call-graph closure of those methods.  Simulator machinery reached
    through the closure — ``repro.sim``, ``repro.memory``,
    ``repro.cluster``, ``repro.rdma``, ``repro.obs``, ``repro.common``
    — is *summarized* (it feeds effect inference) but never *reported
    on*: its internals legitimately park, spin and retry, and its
    contract is what the intrinsics table in
    :mod:`repro.lint.effects` encodes.

Suppressing a deep finding works like any other simlint finding::

    # the handoff is discharged by the caller, measured in ext-phases
    # simlint: ignore[deep-protocol]
    return
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.lint.dataflow import Cfg, build_cfg
from repro.lint.effects import EffectEngine, deep_scope
from repro.lint.findings import ERROR, Finding
from repro.lint.ir import FunctionInfo, ProjectIndex
from repro.lint.source import SourceFile

#: module prefixes whose functions are summarized but not path-checked.
MACHINERY_PREFIXES: Tuple[str, ...] = (
    "repro.sim", "repro.memory", "repro.cluster", "repro.rdma",
    "repro.obs", "repro.common", "repro.lint",
)

#: base-class name that puts a class's methods in deep scope.
LOCK_BASE = "DistributedLock"


class DeepContext:
    """Everything a deep rule needs about one lint run, built once."""

    def __init__(self, files: Sequence[SourceFile],
                 machinery: Tuple[str, ...] = MACHINERY_PREFIXES,
                 lock_base: str = LOCK_BASE):
        self.index = ProjectIndex.build(files)
        self.effects = EffectEngine(self.index)
        self.machinery = machinery
        self.lock_base = lock_base
        #: qualname -> FunctionInfo: lock methods + call-graph closure
        self.scope = deep_scope(self.index, lock_base)
        self._cfgs: Dict[str, Cfg] = {}
        #: scratch memo shared across rules (e.g. relinquish windows)
        self.cache: Dict[object, object] = {}

    def is_machinery(self, module: str) -> bool:
        return any(module == p or module.startswith(p + ".")
                   for p in self.machinery)

    def checked_functions(self) -> List[FunctionInfo]:
        """Scope functions the path checks report on: not machinery, not
        synthetic nested-def entries (their bodies are walked as part of
        the enclosing function), sorted by qualname."""
        return [self.scope[q] for q in sorted(self.scope)
                if ".<" not in q and not self.is_machinery(self.scope[q].module)]

    def cfg(self, fn: FunctionInfo) -> Cfg:
        """CFG of ``fn`` with exception edges at statements whose effect
        summary can raise (shared by every deep rule, so all three see
        the same flow graph)."""
        cached = self._cfgs.get(fn.qualname)
        if cached is None:
            cached = build_cfg(
                fn.node, raises=lambda s: self.effects.stmt_raises(s, fn))
            self._cfgs[fn.qualname] = cached
        return cached

    def finding(self, fn: FunctionInfo, line: int, col: int, rule_id: str,
                severity: str, message: str) -> Finding:
        return Finding(fn.sf.display, line, col, rule_id, severity, message)


class DeepRule:
    """Base class for project-wide rules.

    Unlike :class:`~repro.lint.rules.Rule` (one file at a time), a deep
    rule's :meth:`check_project` sees the whole :class:`DeepContext` and
    may emit findings in any file.  Iteration inside must follow sorted
    orders (the context's accessors already do) so reports stay
    byte-identical across runs.
    """

    rule_id: str = ""
    description: str = ""
    default_severity: str = ERROR

    def check_project(self, ctx: DeepContext) -> Iterator[Finding]:
        raise NotImplementedError


def default_deep_rules() -> Tuple[DeepRule, ...]:
    """The shipped deep rules, in reporting order."""
    # Imported here, not at module top: the rule modules subclass
    # DeepRule, so a top-level import would be circular.
    from repro.lint.blocking import DeepBlockingRule
    from repro.lint.locksets import DeepLocksetRule
    from repro.lint.protocol import DeepProtocolRule

    return (DeepLocksetRule(), DeepProtocolRule(), DeepBlockingRule())


def run_deep_rules(files: Sequence[SourceFile],
                   rules: Optional[Sequence[DeepRule]] = None,
                   context_factory: Callable[..., DeepContext] = None,
                   ) -> List[Finding]:
    """Run deep rules over already-parsed files; returns sorted, de-duped
    findings (a nested helper reached from two lock classes must not
    report twice)."""
    if rules is None:
        rules = default_deep_rules()
    factory = context_factory or DeepContext
    ctx = factory(files)
    out: Dict[Finding, None] = {}
    for rule in rules:
        for finding in rule.check_project(ctx):
            out.setdefault(finding)
    return sorted(out)
