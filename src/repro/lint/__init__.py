"""simlint — AST-based determinism & simulation-safety analyzer.

The reproduction's headline guarantee — identical spec ⇒ identical
timeline, to the bit — rests on conventions that are invisible at
runtime until they break: all randomness through
:class:`repro.common.rng.RngStreams`, no set-order-dependent event
scheduling, paired admission/release on :class:`repro.sim.resources.
Resource`, and memory traffic through the Table-1
:class:`repro.memory.races.RaceAuditor`.  simlint enforces those
conventions statically, before a nondeterministic run ever happens.

Usage::

    python -m repro.lint                  # lint [tool.simlint] paths
    python -m repro.lint src tests        # explicit paths
    python -m repro.lint --strict --json  # CI-friendly modes
    python -m repro.lint --deep           # + project-wide deep pass

The deep pass (:mod:`repro.lint.deep`) layers interprocedural analyses
— acquire/release locksets, verb-protocol state machines, blocking-
effect inference — over a project index and per-function CFGs; see
``docs/architecture.md`` ("Deep analysis").

See :mod:`repro.lint.rules` for the per-file rule set and
``docs/tutorial.md`` for the suppression / baseline workflow.
"""

from repro.lint.baseline import Baseline
from repro.lint.deep import (
    DeepContext,
    DeepRule,
    default_deep_rules,
    run_deep_rules,
)
from repro.lint.engine import LintReport, lint_file, run_lint
from repro.lint.findings import ERROR, WARNING, Finding
from repro.lint.rules import (
    ALL_RULE_IDS,
    DEFAULT_SENSITIVE_PACKAGES,
    DEFAULT_SIM_PACKAGES,
    Rule,
    default_rules,
)

__all__ = [
    "ALL_RULE_IDS",
    "Baseline",
    "DEFAULT_SENSITIVE_PACKAGES",
    "DEFAULT_SIM_PACKAGES",
    "DeepContext",
    "DeepRule",
    "ERROR",
    "Finding",
    "LintReport",
    "Rule",
    "WARNING",
    "default_deep_rules",
    "default_rules",
    "lint_file",
    "run_lint",
    "run_deep_rules",
]
