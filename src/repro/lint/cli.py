"""``python -m repro.lint`` — the simlint command line.

Exit status: 0 when the tree is clean (after suppressions and baseline),
1 when findings remain, 2 on usage errors (argparse's convention), 3
when ``--fail-stale`` is set and baseline entries no longer fire.

Configuration is read from ``[tool.simlint]`` in the nearest
``pyproject.toml`` at or above ``--root`` (default: the current
directory); command-line arguments override it.  Recognised keys::

    [tool.simlint]
    paths = ["src", "tests", "benchmarks"]
    exclude = ["tests/lint/fixtures"]
    baseline = "simlint-baseline.json"

The deep pass (``--deep``) adds the project-wide rules —
``deep-lockset``, ``deep-protocol``, ``deep-blocking`` — on top of the
per-file set.  Selecting a deep rule id with ``--select`` implies
``--deep``.
"""

from __future__ import annotations

import argparse
import json
import sys
import tomllib
from pathlib import Path
from typing import Optional, Sequence

from repro.lint.baseline import Baseline
from repro.lint.deep import default_deep_rules
from repro.lint.engine import run_lint
from repro.lint.findings import SEVERITIES
from repro.lint.rules import default_rules


def _load_config(root: Path) -> dict:
    cur = root.resolve()
    while True:
        candidate = cur / "pyproject.toml"
        if candidate.is_file():
            try:
                data = tomllib.loads(candidate.read_text(encoding="utf-8"))
            except tomllib.TOMLDecodeError:
                return {}
            return data.get("tool", {}).get("simlint", {})
        if cur.parent == cur:
            return {}
        cur = cur.parent


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="simlint: determinism & simulation-safety analyzer")
    parser.add_argument("paths", nargs="*",
                        help="files/directories to lint (default: "
                             "[tool.simlint] paths, else 'src')")
    parser.add_argument("--root", default=".",
                        help="directory paths and reports are relative to")
    parser.add_argument("--baseline", default=None,
                        help="baseline JSON of grandfathered findings "
                             "(default: [tool.simlint] baseline, if the "
                             "file exists)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any configured baseline")
    parser.add_argument("--strict", action="store_true",
                        help="ignore the baseline and flag unused "
                             "suppression comments")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the report as JSON on stdout")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to the baseline file "
                             "and exit 0")
    parser.add_argument("--prune-baseline", action="store_true",
                        help="rewrite the baseline dropping entries that "
                             "no longer fire (counts only shrink) and "
                             "exit 0")
    parser.add_argument("--fail-stale", action="store_true",
                        help="exit 3 when baseline entries no longer fire "
                             "(default: warn on stderr)")
    parser.add_argument("--deep", action="store_true",
                        help="run the project-wide deep pass (lockset, "
                             "protocol and blocking analyses)")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule ids to run (default: "
                             "all); deep ids imply --deep")
    parser.add_argument("--ignore", default=None,
                        help="comma-separated rule ids to skip")
    parser.add_argument("--severity", action="append", default=None,
                        metavar="RULE=LEVEL",
                        help="override a rule's reported severity "
                             "(error|warning); repeatable")
    parser.add_argument("--rules", default=None,
                        help="alias for --select (kept for compatibility)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list rule ids and exit")
    return parser


def _split_ids(raw: Optional[str]) -> list[str]:
    return [r.strip() for r in (raw or "").split(",") if r.strip()]


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    all_rules = default_rules()
    all_deep = default_deep_rules()
    known = ({rule.rule_id for rule in all_rules}
             | {rule.rule_id for rule in all_deep})
    deep_ids = {rule.rule_id for rule in all_deep}

    if args.list_rules:
        for rule in all_rules:
            print(f"{rule.rule_id}: {rule.description}")
        for rule in all_deep:
            print(f"{rule.rule_id} (deep): {rule.description}")
        return 0

    root = Path(args.root).resolve()
    config = _load_config(root)

    selected = _split_ids(args.select) + _split_ids(args.rules)
    ignored = _split_ids(args.ignore)
    unknown = [w for w in selected + ignored if w not in known]
    if unknown:
        print(f"unknown rule id(s): {', '.join(unknown)}", file=sys.stderr)
        return 2

    deep = args.deep or any(w in deep_ids for w in selected)
    rules = all_rules
    deep_rules = all_deep
    if selected:
        rules = tuple(r for r in all_rules if r.rule_id in selected)
        deep_rules = tuple(r for r in all_deep if r.rule_id in selected)
    if ignored:
        rules = tuple(r for r in rules if r.rule_id not in ignored)
        deep_rules = tuple(r for r in deep_rules
                           if r.rule_id not in ignored)

    severity_overrides: dict[str, str] = {}
    for spec in args.severity or ():
        rule_id, sep, level = spec.partition("=")
        if not sep or rule_id.strip() not in known \
                or level.strip() not in SEVERITIES:
            print(f"bad --severity {spec!r} (want RULE=error|warning "
                  f"with a known rule id)", file=sys.stderr)
            return 2
        severity_overrides[rule_id.strip()] = level.strip()

    paths = list(args.paths) or list(config.get("paths", [])) or ["src"]
    exclude = list(config.get("exclude", []))

    baseline_path: Optional[Path] = None
    if not args.no_baseline:
        if args.baseline:
            baseline_path = root / args.baseline
        elif config.get("baseline"):
            candidate = root / str(config["baseline"])
            if candidate.is_file() or args.write_baseline:
                baseline_path = candidate

    run_kwargs = dict(root=root, rules=rules, exclude=exclude, deep=deep,
                      deep_rules=deep_rules,
                      severity_overrides=severity_overrides or None)

    if args.write_baseline:
        if baseline_path is None:
            print("--write-baseline needs --baseline or a [tool.simlint] "
                  "baseline setting", file=sys.stderr)
            return 2
        report = run_lint(paths, **run_kwargs)
        Baseline.from_findings(report.findings).save(baseline_path)
        print(f"wrote {len(report.findings)} finding(s) to {baseline_path}")
        return 0

    baseline = None
    if baseline_path is not None and baseline_path.is_file():
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, KeyError, json.JSONDecodeError) as exc:
            print(f"bad baseline file {baseline_path}: {exc}", file=sys.stderr)
            return 2

    if args.prune_baseline:
        if baseline_path is None or baseline is None:
            print("--prune-baseline needs an existing baseline file "
                  "(--baseline or [tool.simlint] baseline)", file=sys.stderr)
            return 2
        report = run_lint(paths, **run_kwargs)
        pruned = baseline.pruned(report.findings)
        dropped = len(baseline) - len(pruned)
        pruned.save(baseline_path)
        print(f"pruned {dropped} stale baseline finding(s); "
              f"{len(pruned)} remain in {baseline_path}")
        return 0

    report = run_lint(paths, baseline=baseline, strict=args.strict,
                      **run_kwargs)

    for (file, rule, message), unused in report.stale_baseline:
        print(f"simlint: stale baseline entry ({unused} unused): "
              f"{file}: {rule}: {message}", file=sys.stderr)
    if report.stale_baseline:
        print("simlint: run --prune-baseline to ratchet the baseline down",
              file=sys.stderr)

    if args.as_json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        for finding in report.findings:
            print(finding.render())
        summary = (f"simlint: {len(report.findings)} finding(s) in "
                   f"{report.files_scanned} file(s)")
        if report.suppressed:
            summary += f", {len(report.suppressed)} suppressed"
        if report.baselined:
            summary += f", {len(report.baselined)} baselined"
        if report.stale_baseline:
            summary += (f", {len(report.stale_baseline)} stale baseline "
                        f"entr{'y' if len(report.stale_baseline) == 1 else 'ies'}")
        print(summary)
    if not report.clean:
        return 1
    if report.stale_baseline and args.fail_stale:
        return 3
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
