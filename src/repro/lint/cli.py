"""``python -m repro.lint`` — the simlint command line.

Exit status: 0 when the tree is clean (after suppressions and baseline),
1 when findings remain, 2 on usage errors (argparse's convention).

Configuration is read from ``[tool.simlint]`` in the nearest
``pyproject.toml`` at or above ``--root`` (default: the current
directory); command-line arguments override it.  Recognised keys::

    [tool.simlint]
    paths = ["src", "tests", "benchmarks"]
    exclude = ["tests/lint/fixtures"]
    baseline = "simlint-baseline.json"
"""

from __future__ import annotations

import argparse
import json
import sys
import tomllib
from pathlib import Path
from typing import Optional, Sequence

from repro.lint.baseline import Baseline
from repro.lint.engine import run_lint
from repro.lint.rules import default_rules


def _load_config(root: Path) -> dict:
    cur = root.resolve()
    while True:
        candidate = cur / "pyproject.toml"
        if candidate.is_file():
            try:
                data = tomllib.loads(candidate.read_text(encoding="utf-8"))
            except tomllib.TOMLDecodeError:
                return {}
            return data.get("tool", {}).get("simlint", {})
        if cur.parent == cur:
            return {}
        cur = cur.parent


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="simlint: determinism & simulation-safety analyzer")
    parser.add_argument("paths", nargs="*",
                        help="files/directories to lint (default: "
                             "[tool.simlint] paths, else 'src')")
    parser.add_argument("--root", default=".",
                        help="directory paths and reports are relative to")
    parser.add_argument("--baseline", default=None,
                        help="baseline JSON of grandfathered findings "
                             "(default: [tool.simlint] baseline, if the "
                             "file exists)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any configured baseline")
    parser.add_argument("--strict", action="store_true",
                        help="ignore the baseline and flag unused "
                             "suppression comments")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the report as JSON on stdout")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to the baseline file "
                             "and exit 0")
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule ids to run (default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list rule ids and exit")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    all_rules = default_rules()

    if args.list_rules:
        for rule in all_rules:
            print(f"{rule.rule_id}: {rule.description}")
        return 0

    root = Path(args.root).resolve()
    config = _load_config(root)

    rules = all_rules
    if args.rules:
        wanted = [r.strip() for r in args.rules.split(",") if r.strip()]
        known = {rule.rule_id for rule in all_rules}
        unknown = [w for w in wanted if w not in known]
        if unknown:
            print(f"unknown rule id(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
        rules = tuple(r for r in all_rules if r.rule_id in wanted)

    paths = list(args.paths) or list(config.get("paths", [])) or ["src"]
    exclude = list(config.get("exclude", []))

    baseline_path: Optional[Path] = None
    if not args.no_baseline:
        if args.baseline:
            baseline_path = root / args.baseline
        elif config.get("baseline"):
            candidate = root / str(config["baseline"])
            if candidate.is_file() or args.write_baseline:
                baseline_path = candidate

    if args.write_baseline:
        if baseline_path is None:
            print("--write-baseline needs --baseline or a [tool.simlint] "
                  "baseline setting", file=sys.stderr)
            return 2
        report = run_lint(paths, root=root, rules=rules, exclude=exclude)
        Baseline.from_findings(report.findings).save(baseline_path)
        print(f"wrote {len(report.findings)} finding(s) to {baseline_path}")
        return 0

    baseline = None
    if baseline_path is not None and baseline_path.is_file():
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, KeyError, json.JSONDecodeError) as exc:
            print(f"bad baseline file {baseline_path}: {exc}", file=sys.stderr)
            return 2

    report = run_lint(paths, root=root, rules=rules, baseline=baseline,
                      strict=args.strict, exclude=exclude)

    if args.as_json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        for finding in report.findings:
            print(finding.render())
        summary = (f"simlint: {len(report.findings)} finding(s) in "
                   f"{report.files_scanned} file(s)")
        if report.suppressed:
            summary += f", {len(report.suppressed)} suppressed"
        if report.baselined:
            summary += f", {len(report.baselined)} baselined"
        print(summary)
    return 0 if report.clean else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
