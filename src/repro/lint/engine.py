"""simlint engine: file discovery, suppression handling, rule dispatch.

The engine is deliberately execution-free — files are *parsed*, never
imported, so linting ``benchmarks/`` or a half-written module cannot run
simulations or fail on missing optional dependencies.

Suppressions
    ``# simlint: ignore[rule-a,rule-b]`` on a line suppresses those
    rules' findings on that line; ``ignore[*]`` suppresses everything.
    A comment-only line applies to the next line instead, so long
    statements can carry a justification::

        # wall-clock is fine here: operator-facing progress, not sim time
        # simlint: ignore[nondet-source]
        elapsed = time.perf_counter() - start

    ``--strict`` additionally reports suppression comments that matched
    nothing (rule id ``unused-suppression``), so stale pragmas rot away.

Determinism
    Files are scanned in sorted path order and findings are globally
    sorted; two runs over the same tree produce byte-identical reports
    regardless of ``PYTHONHASHSEED`` — the same bar the rules enforce.
"""

from __future__ import annotations

import io
import os
import re
import tokenize
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.lint.baseline import Baseline
from repro.lint.findings import ERROR, WARNING, Finding
from repro.lint.rules import Rule, default_rules
from repro.lint.source import SourceFile

#: pseudo-rules emitted by the engine itself.
PARSE_ERROR_RULE = "parse-error"
UNUSED_SUPPRESSION_RULE = "unused-suppression"

_SUPPRESS_RE = re.compile(r"#\s*simlint:\s*ignore\[([^\]]*)\]")
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hg", ".venv", "venv",
                        "node_modules", ".eggs", "build", "dist"})


@dataclass
class LintReport:
    """Outcome of one engine run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    #: baseline entries that absorbed fewer findings than recorded:
    #: ((file, rule, message), unused-count) — paid-down debt that
    #: should be pruned (``--prune-baseline``) so it can't regress.
    stale_baseline: list[tuple[tuple[str, str, str], int]] = \
        field(default_factory=list)
    files_scanned: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_json(self) -> dict:
        return {
            "clean": self.clean,
            "files_scanned": self.files_scanned,
            "findings": [f.to_json() for f in self.findings],
            "suppressed": len(self.suppressed),
            "baselined": len(self.baselined),
            "stale_baseline": [
                {"file": key[0], "rule": key[1], "message": key[2],
                 "unused": unused}
                for key, unused in self.stale_baseline
            ],
        }


# --------------------------------------------------------------------------
# file discovery
# --------------------------------------------------------------------------

def _excluded(rel_posix: str, exclude: Sequence[str]) -> bool:
    for pattern in exclude:
        pat = pattern.rstrip("/")
        if rel_posix == pat or rel_posix.startswith(pat + "/"):
            return True
    return False


def iter_source_files(paths: Iterable[str | Path], *, root: Path,
                      exclude: Sequence[str] = ()) -> list[Path]:
    """Expand ``paths`` (files or directories) into a sorted, de-duplicated
    list of ``.py`` files, honouring ``exclude`` (root-relative POSIX
    path prefixes).  Exclusions prune the directory walk only — a file
    named explicitly is always linted (mirroring the intent of pointing
    the tool at it)."""
    out: dict[str, Path] = {}
    for raw in paths:
        p = Path(raw)
        if not p.is_absolute():
            p = root / p
        if p.is_file():
            if p.suffix == ".py":
                out[_display(p, root)] = p
            continue
        if not p.is_dir():
            continue
        for dirpath, dirnames, filenames in os.walk(p):
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in _SKIP_DIRS and not d.startswith(".")
                and not _excluded(_display(Path(dirpath) / d, root), exclude))
            for fname in sorted(filenames):
                if not fname.endswith(".py"):
                    continue
                fpath = Path(dirpath) / fname
                rel = _display(fpath, root)
                if not _excluded(rel, exclude):
                    out[rel] = fpath
    return [out[key] for key in sorted(out)]


def _display(path: Path, root: Path) -> str:
    try:
        rel = path.resolve().relative_to(root.resolve())
        return rel.as_posix()
    except ValueError:
        return path.resolve().as_posix()


# --------------------------------------------------------------------------
# suppression comments
# --------------------------------------------------------------------------

def _suppressions(source: str) -> dict[int, set[str]]:
    """Map (1-based) line number → suppressed rule ids (``"*"`` = all).

    A suppression on a comment-only line attaches to the following line.
    Only real ``COMMENT`` tokens count — a pragma *quoted in a string*
    (like the examples in this module's docstring) is documentation, not
    a suppression.
    """
    table: dict[int, set[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return table  # unparseable files already surface as parse-error
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        m = _SUPPRESS_RE.search(tok.string)
        if not m:
            continue
        ids = {part.strip() for part in m.group(1).split(",") if part.strip()}
        if not ids:
            continue
        lineno = tok.start[0]
        target = lineno + 1 if tok.line.lstrip().startswith("#") else lineno
        table.setdefault(target, set()).update(ids)
    return table


def _apply_suppressions(
        findings: list[Finding], table: dict[int, set[str]],
) -> tuple[list[Finding], list[Finding], set[int]]:
    """Split findings into (kept, suppressed); also return the set of
    suppression line numbers that matched at least one finding."""
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    used_lines: set[int] = set()
    for f in findings:
        ids = table.get(f.line)
        if ids and ("*" in ids or f.rule in ids):
            suppressed.append(f)
            used_lines.add(f.line)
        else:
            kept.append(f)
    return kept, suppressed, used_lines


# --------------------------------------------------------------------------
# engine
# --------------------------------------------------------------------------

def lint_source_file(sf: SourceFile, rules: Sequence[Rule]) -> list[Finding]:
    """Raw findings for one parsed file (suppressions not yet applied),
    sorted in canonical order."""
    found: list[Finding] = []
    for rule in rules:
        found.extend(rule.check(sf))
    return sorted(found)


def lint_file(path: Path, *, rules: Optional[Sequence[Rule]] = None,
              root: Optional[Path] = None,
              module: Optional[str] = None) -> list[Finding]:
    """Lint one file, applying its suppression comments.  ``module``
    overrides dotted-name inference (used by fixture tests to place a
    file inside a scoped package)."""
    root = root or Path.cwd()
    rules = default_rules() if rules is None else rules
    display = _display(path, root)
    try:
        sf = SourceFile.parse(path, display=display, module=module)
    except (SyntaxError, UnicodeDecodeError) as exc:
        line = getattr(exc, "lineno", 1) or 1
        msg = getattr(exc, "msg", None) or str(exc)
        return [Finding(display, line, 0, PARSE_ERROR_RULE, ERROR,
                        f"file does not parse: {msg}")]
    raw = lint_source_file(sf, rules)
    table = _suppressions(sf.source)
    kept, _suppressed, _used = _apply_suppressions(raw, table)
    return kept


def run_lint(paths: Iterable[str | Path], *,
             root: Optional[Path] = None,
             rules: Optional[Sequence[Rule]] = None,
             baseline: Optional[Baseline] = None,
             strict: bool = False,
             exclude: Sequence[str] = (),
             deep: bool = False,
             deep_rules: Optional[Sequence[object]] = None,
             severity_overrides: Optional[dict[str, str]] = None,
             ) -> LintReport:
    """Lint a tree.

    Args:
        paths: files/directories, absolute or ``root``-relative.
        root: directory findings are reported relative to (default cwd).
        rules: rule instances (default: the shipped set).
        baseline: grandfathered findings to subtract (ignored under
            ``strict``).  Entries that no longer fire are reported in
            :attr:`LintReport.stale_baseline`.
        strict: ignore the baseline and report unused suppressions.
        exclude: root-relative POSIX path prefixes to skip.
        deep: also run the project-wide deep pass (lockset, protocol,
            blocking) over all files that parsed.  Deep findings flow
            through the same suppression and baseline machinery.
        deep_rules: deep rule instances (default: the shipped three;
            only consulted when ``deep`` is true).
        severity_overrides: ``{rule_id: severity}`` applied to reported
            findings (baseline identity is severity-blind, so an
            override never un-matches a grandfathered entry).

    The run is two-pass when ``deep`` is set: every file is parsed and
    per-file rules run first, then the deep pass sees all parsed trees
    at once, then suppressions apply per file to the merged stream.
    """
    root = (root or Path.cwd()).resolve()
    rules = default_rules() if rules is None else rules
    report = LintReport()

    parsed: list[SourceFile] = []
    raw_by_file: dict[str, list[Finding]] = {}
    unparsed: list[Finding] = []

    for path in iter_source_files(paths, root=root, exclude=exclude):
        report.files_scanned += 1
        display = _display(path, root)
        try:
            sf = SourceFile.parse(path, display=display)
        except (SyntaxError, UnicodeDecodeError) as exc:
            line = getattr(exc, "lineno", 1) or 1
            msg = getattr(exc, "msg", None) or str(exc)
            unparsed.append(Finding(display, line, 0, PARSE_ERROR_RULE,
                                    ERROR, f"file does not parse: {msg}"))
            continue
        parsed.append(sf)
        raw_by_file[sf.display] = lint_source_file(sf, rules)

    if deep and parsed:
        from repro.lint.deep import run_deep_rules
        for f in run_deep_rules(parsed, rules=deep_rules):
            raw_by_file.setdefault(f.file, []).append(f)

    # Rule ids that actually ran this pass: a suppression scoped
    # entirely to rules that did not run (e.g. a deep-* pragma on a
    # non-deep run) is not "unused" — it just wasn't exercised.
    ran_ids = {r.rule_id for r in rules}
    if deep:
        if deep_rules is None:
            from repro.lint.deep import default_deep_rules
            deep_rules = default_deep_rules()
        ran_ids |= {r.rule_id for r in deep_rules}

    all_kept: list[Finding] = list(unparsed)
    for sf in parsed:
        raw = sorted(raw_by_file.get(sf.display, []))
        table = _suppressions(sf.source)
        kept, suppressed, used_lines = _apply_suppressions(raw, table)
        report.suppressed.extend(suppressed)
        all_kept.extend(kept)
        if strict:
            for line in sorted(table):
                if line in used_lines:
                    continue
                ids = table[line]
                if "*" not in ids and not ids & ran_ids:
                    continue
                all_kept.append(Finding(
                    sf.display, line, 0, UNUSED_SUPPRESSION_RULE,
                    WARNING,
                    "suppression comment matches no finding; remove it"))

    if severity_overrides:
        all_kept = [
            replace(f, severity=severity_overrides[f.rule])
            if f.rule in severity_overrides else f
            for f in all_kept
        ]

    if baseline is not None and not strict:
        kept, baselined = baseline.split(all_kept)
        report.baselined = baselined
        report.findings = sorted(kept)
        report.stale_baseline = baseline.stale_after(all_kept)
    else:
        report.findings = sorted(all_kept)
    report.suppressed.sort()
    return report
