"""deep-lockset: interprocedural acquire/release pairing.

The contract (paper §5.2 / ROADMAP item 4's "gauntlet"): every normal
exit from a ``lock()`` implementation has recorded the acquisition;
every normal exit from ``unlock()`` has recorded the release and
retired the descriptor; and no exceptional exit from ``lock()`` leaves
a descriptor published — a leaked descriptor wedges the one-descriptor-
per-thread discipline permanently (the exact failure ALock's
``except BaseException`` cleanup exists to prevent).

Two independent dimensions are tracked through a forward dataflow over
the shared CFG:

``acq``
    the acquisition oracle — set by ``_note_acquired(...)`` or by
    publishing a holder id (``x._holder_gid = <non-zero>``); cleared by
    ``_note_released(...)`` or ``x._holder_gid = 0``.
``desc``
    the descriptor lifecycle — set by a zero-argument ``.begin()`` call
    or ``x.in_use = True``; cleared by zero-argument ``.end()`` or
    ``x.in_use = False``.  (The zero-argument restriction keeps
    ``ctx.spans.end(sp)`` — same name tail, different protocol — out.)

Both dimensions are four-valued: ``ID`` (untouched), ``SET``, ``CLR``,
``MIX`` (differs by path).  Helpers are summarized interprocedurally
with the same analysis started from ``(ID, ID)``; a call site applies
the callee's summary, so ``lock()`` delegating the entire acquisition
to ``self._do_lock(ctx)`` still checks out.  Exception edges carry the
*pre*-state of the raising statement — a ``begin()`` that raises has
not published the descriptor (the documented begin-before-guard
semantics in :mod:`repro.locks.alock.alock`).

Findings are anchored to the exit-causing statement (the ``return``, the
raising call, or the final statement of a fall-through path), so an
inline suppression can target the one path that is intentional.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Tuple

from repro.lint.dataflow import EXC, Cfg, CfgNode, ForwardAnalysis, run_forward
from repro.lint.deep import DeepContext, DeepRule
from repro.lint.findings import Finding
from repro.lint.ir import FunctionInfo, attr_tail

#: four-valued dimension lattice
ID, SET, CLR, MIX = 0, 1, 2, 3

State = Tuple[int, int]  # (acq, desc)

_ACQ_CALLS = {"_note_acquired": SET, "_note_released": CLR}
_HOLDER_ATTR = "_holder_gid"
_DESC_CALLS = {"begin": SET, "end": CLR}
_DESC_ATTR = "in_use"


def _join_dim(a: int, b: int) -> int:
    return a if a == b else MIX


def _apply_dim(value: int, event: int) -> int:
    if event == ID:
        return value
    if event == MIX:
        return MIX
    return event


def _const_is(node: ast.AST, wanted: object) -> bool:
    return isinstance(node, ast.Constant) and node.value == wanted


def stmt_events(stmt: ast.AST, ctx: DeepContext,
                fn: FunctionInfo,
                summarize) -> List[Tuple[str, int]]:
    """Lockset events inside one statement, in AST walk order.  Each is
    ``("acq"|"desc", event)``; resolved helper calls contribute their
    interprocedural summary."""
    events: List[Tuple[str, int]] = []
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call):
            tail = attr_tail(node.func)
            if tail in _ACQ_CALLS:
                events.append(("acq", _ACQ_CALLS[tail]))
            elif tail in _DESC_CALLS and not node.args and not node.keywords:
                events.append(("desc", _DESC_CALLS[tail]))
            else:
                for callee in ctx.index.resolve_call(node, fn):
                    acq_s, desc_s = summarize(callee)
                    if acq_s != ID:
                        events.append(("acq", acq_s))
                    if desc_s != ID:
                        events.append(("desc", desc_s))
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                tail = attr_tail(target)
                if tail == _HOLDER_ATTR:
                    events.append(
                        ("acq", CLR if _const_is(node.value, 0) else SET))
                elif tail == _DESC_ATTR:
                    if _const_is(node.value, True):
                        events.append(("desc", SET))
                    elif _const_is(node.value, False):
                        events.append(("desc", CLR))
    return events


class _LockstateAnalysis(ForwardAnalysis):
    def __init__(self, ctx: DeepContext, fn: FunctionInfo, entry: State,
                 summarize):
        self.ctx = ctx
        self.fn = fn
        self.entry = entry
        self.summarize = summarize
        self._events: Dict[int, List[Tuple[str, int]]] = {}

    def initial(self) -> State:
        return self.entry

    def join(self, a: State, b: State) -> State:
        return (_join_dim(a[0], b[0]), _join_dim(a[1], b[1]))

    def transfer(self, node: CfgNode, state: State) -> State:
        if not node.heads:
            return state
        events = self._events.get(node.idx)
        if events is None:
            events = []
            for head in node.heads:
                events.extend(stmt_events(head, self.ctx, self.fn,
                                          self.summarize))
            self._events[node.idx] = events
        acq, desc = state
        for dim, event in events:
            if dim == "acq":
                acq = _apply_dim(acq, event)
            else:
                desc = _apply_dim(desc, event)
        return acq, desc

    def transfer_edge(self, node: CfgNode, kind: str,
                      pre: State, post: State) -> State:
        # An exception aborts the statement: its own events have not
        # happened (begin-before-guard semantics), earlier ones have.
        return pre if kind == EXC else post


def _solve(ctx: DeepContext, fn: FunctionInfo, entry: State,
           summarize) -> Tuple[Cfg, Dict[int, State]]:
    cfg = ctx.cfg(fn)
    analysis = _LockstateAnalysis(ctx, fn, entry, summarize)
    return cfg, run_forward(cfg, analysis)  # type: ignore[return-value]


def _exit_states(cfg: Cfg, before: Dict[int, State], exit_idx: int,
                 analysis_entry: State,
                 ctx: DeepContext, fn: FunctionInfo,
                 summarize) -> List[Tuple[CfgNode, State]]:
    """(predecessor node, state carried into the exit) for each edge
    into ``exit_idx`` — re-deriving the edge state the same way the
    solver did, so findings anchor to the exit-causing statement."""
    analysis = _LockstateAnalysis(ctx, fn, analysis_entry, summarize)
    out: List[Tuple[CfgNode, State]] = []
    for src, dst, kind in cfg.edges():
        if dst != exit_idx or src not in before:
            continue
        node = cfg.node(src)
        pre = before[src]
        post = analysis.transfer(node, pre)
        out.append((node, analysis.transfer_edge(node, kind, pre, post)))
    return out


class _Summarizer:
    """Memoized interprocedural (acq, desc) transfer summaries.

    A function's summary is the join over its normal exits of the
    analysis started from ``(ID, ID)``; recursion bottoms out at ID
    (conservative: an unresolved cycle contributes nothing, so it can
    hide an event but never invent one)."""

    def __init__(self, ctx: DeepContext):
        self.ctx = ctx
        self._memo: Dict[str, State] = {}
        self._busy: set[str] = set()

    def __call__(self, fn: FunctionInfo) -> State:
        cached = self._memo.get(fn.qualname)
        if cached is not None:
            return cached
        if fn.qualname in self._busy:
            return (ID, ID)
        self._busy.add(fn.qualname)
        try:
            cfg, before = _solve(self.ctx, fn, (ID, ID), self)
            exits = _exit_states(cfg, before, cfg.exit, (ID, ID),
                                 self.ctx, fn, self)
            if not exits:
                summary: State = (ID, ID)  # never returns normally
            else:
                acq = desc = None
                for _, (a, d) in exits:
                    acq = a if acq is None else _join_dim(acq, a)
                    desc = d if desc is None else _join_dim(desc, d)
                summary = (acq, desc)  # type: ignore[assignment]
        finally:
            self._busy.discard(fn.qualname)
        self._memo[fn.qualname] = summary
        return summary


RULE_ID = "deep-lockset"


class DeepLocksetRule(DeepRule):
    rule_id = RULE_ID
    description = ("lock()/unlock() acquire-release pairing and "
                   "descriptor lifecycle, proven across helpers")

    def check_project(self, ctx: DeepContext) -> Iterator[Finding]:
        summarize = _Summarizer(ctx)
        for cls_info in ctx.index.subclasses_of(ctx.lock_base):
            if ctx.is_machinery(cls_info.module):
                continue
            lock_fn = cls_info.methods.get("lock")
            if lock_fn is not None:
                yield from self._check_lock(ctx, cls_info.name, lock_fn,
                                            summarize)
            unlock_fn = cls_info.methods.get("unlock")
            if unlock_fn is not None:
                yield from self._check_unlock(ctx, cls_info.name, unlock_fn,
                                              summarize)

    # -- lock() ------------------------------------------------------------
    def _check_lock(self, ctx: DeepContext, cls_name: str,
                    fn: FunctionInfo, summarize) -> Iterator[Finding]:
        entry: State = (CLR, CLR)
        cfg, before = _solve(ctx, fn, entry, summarize)
        for node, (acq, _desc) in _exit_states(
                cfg, before, cfg.exit, entry, ctx, fn, summarize):
            if acq != SET:
                qualifier = ("on some path " if acq == MIX else "")
                yield ctx.finding(
                    fn, node.line, 0, self.rule_id, self.default_severity,
                    f"{cls_name}.lock() can return {qualifier}without "
                    f"recording the acquisition (_note_acquired / holder "
                    f"publish missing on this path)")
        # Normal exits keep the descriptor published by design (unlock
        # retires it); only exceptional exits must have cleaned up.
        for node, (_acq, desc) in _exit_states(
                cfg, before, cfg.raise_exit, entry, ctx, fn, summarize):
            if desc in (SET, MIX):
                qualifier = "may be" if desc == MIX else "is still"
                yield ctx.finding(
                    fn, node.line, 0, self.rule_id, self.default_severity,
                    f"{cls_name}.lock() can raise here while the descriptor "
                    f"{qualifier} published — release it (end() / "
                    f"in_use = False) before propagating, or the thread's "
                    f"descriptor is leaked for good")

    # -- unlock() ----------------------------------------------------------
    def _check_unlock(self, ctx: DeepContext, cls_name: str,
                      fn: FunctionInfo, summarize) -> Iterator[Finding]:
        # Descriptor dimension only applies if unlock (transitively)
        # manages a descriptor at all; locks without one stay vacuous.
        _acq_s, desc_s = summarize(fn)
        entry: State = (SET, SET if desc_s != ID else ID)
        cfg, before = _solve(ctx, fn, entry, summarize)
        for node, (acq, desc) in _exit_states(
                cfg, before, cfg.exit, entry, ctx, fn, summarize):
            if acq != CLR:
                qualifier = ("on some path " if acq == MIX else "")
                yield ctx.finding(
                    fn, node.line, 0, self.rule_id, self.default_severity,
                    f"{cls_name}.unlock() can return {qualifier}without "
                    f"recording the release (_note_released / holder clear "
                    f"missing on this path)")
            if desc in (SET, MIX):
                qualifier = ("on some path " if desc == MIX else "")
                yield ctx.finding(
                    fn, node.line, 0, self.rule_id, self.default_severity,
                    f"{cls_name}.unlock() can return {qualifier}with the "
                    f"descriptor still held (end() / in_use = False missing "
                    f"on this path)")
