"""Parsed-source container handed to every rule.

Keeps the AST, the raw lines (for suppression comments) and the dotted
module name, so rules can scope themselves to packages (e.g. the
event-ordering-sensitive modules) without re-deriving anything.

Parent links: :func:`attach_parents` stores each node's parent on the
node itself (``_simlint_parent``), letting rules walk *up* the tree —
``ast`` only supports walking down.  Identity-keyed side tables are
deliberately avoided: they would depend on interpreter object addresses,
and simlint holds itself to the determinism bar it enforces.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional

PARENT_ATTR = "_simlint_parent"


def attach_parents(tree: ast.AST) -> None:
    """Store a ``_simlint_parent`` attribute on every node in ``tree``."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            setattr(child, PARENT_ATTR, node)


def parent_of(node: ast.AST) -> Optional[ast.AST]:
    return getattr(node, PARENT_ATTR, None)


def ancestors(node: ast.AST) -> Iterator[ast.AST]:
    """Yield parents from the immediate one up to the module node."""
    cur = parent_of(node)
    while cur is not None:
        yield cur
        cur = parent_of(cur)


def module_name_for(path: Path) -> str:
    """Dotted module name inferred from package ``__init__.py`` files.

    ``src/repro/lint/engine.py`` → ``repro.lint.engine``;
    ``tests/sim/test_core.py`` → ``tests.sim.test_core`` (the test tree
    is a package); a free-standing file such as
    ``benchmarks/bench_faults.py`` maps to its bare stem.
    """
    path = path.resolve()
    parts = [path.stem] if path.name != "__init__.py" else []
    cur = path.parent
    while (cur / "__init__.py").exists():
        parts.insert(0, cur.name)
        nxt = cur.parent
        if nxt == cur:  # filesystem root; defensive
            break
        cur = nxt
    return ".".join(parts) if parts else path.stem


@dataclass(frozen=True)
class SourceFile:
    """One parsed Python file."""

    path: Path          #: absolute path on disk
    display: str        #: POSIX-form path used in findings/baselines
    module: str         #: dotted module name ("bench_x" style when unpackaged)
    source: str
    tree: ast.Module
    lines: tuple[str, ...]

    def in_package(self, *packages: str) -> bool:
        """True if :attr:`module` is one of ``packages`` or inside one."""
        return any(self.module == p or self.module.startswith(p + ".")
                   for p in packages)

    @classmethod
    def parse(cls, path: Path, display: Optional[str] = None,
              module: Optional[str] = None) -> "SourceFile":
        """Read and parse ``path``; raises ``SyntaxError`` on bad input
        (the engine converts that into a ``parse-error`` finding)."""
        text = path.read_text(encoding="utf-8")
        return cls.from_source(text, path=path, display=display, module=module)

    @classmethod
    def from_source(cls, text: str, *, path: Path,
                    display: Optional[str] = None,
                    module: Optional[str] = None) -> "SourceFile":
        tree = ast.parse(text, filename=str(path))
        attach_parents(tree)
        return cls(
            path=path,
            display=display if display is not None else path.as_posix(),
            module=module if module is not None else module_name_for(path),
            source=text,
            tree=tree,
            lines=tuple(text.splitlines()),
        )
