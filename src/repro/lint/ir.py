"""Project-wide IR for simlint's deep pass: index and call graph.

The per-file rules see one AST at a time; the deep analyses
(:mod:`repro.lint.locksets`, :mod:`repro.lint.protocol`,
:mod:`repro.lint.blocking`) need to know *which* function a call lands
in, across files.  :class:`ProjectIndex` provides that: every module,
class and function in the linted tree, plus a conservatively resolved
call graph.

Resolution is deliberately static and name-based — simlint never
imports the code it analyzes — so it is a *may* call graph:

* ``self.m()`` resolves through the receiver's class and its indexed
  base classes (single inheritance chains, matched by base *name*);
* bare ``f()`` resolves to a module-level function of the caller's
  module, or through ``from x import f`` / ``import x`` aliases when
  the target module is indexed;
* ``obj.m()`` with an unresolvable receiver falls back to unique-name
  matching: if exactly one indexed function is named ``m`` it is taken
  as the (may-)callee, otherwise every candidate is returned.  Analyses
  that need soundness join over all candidates.

Like everything in simlint, iteration orders are fixed (sorted
qualnames) so reports are byte-identical across runs and
``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.lint.source import SourceFile


def call_name(node: ast.Call) -> Optional[str]:
    """Dotted text of a call's function (``a.b.c``), else None."""
    return expr_text(node.func)


def expr_text(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None


def attr_tail(node: ast.AST) -> Optional[str]:
    """Last attribute segment of an expression (``lock.victim_ptr`` →
    ``victim_ptr``); for a bare name, the name itself.  Used to match
    pointer expressions across helper boundaries, where the *object*
    spelling changes but the field name does not."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def name_tails(node: ast.AST) -> frozenset:
    """All attribute/name tails appearing anywhere in an expression —
    ``ptr_addr(desc.locked_ptr)`` → {ptr_addr, desc, locked_ptr}."""
    tails = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute):
            tails.add(sub.attr)
        elif isinstance(sub, ast.Name):
            tails.add(sub.id)
    return frozenset(tails)


@dataclass
class FunctionInfo:
    """One function or method in the indexed tree."""

    qualname: str                #: ``module:Class.meth`` / ``module:func``
    module: str
    name: str
    cls: Optional[str]           #: simple class name, None for functions
    node: ast.AST                #: FunctionDef | AsyncFunctionDef
    sf: SourceFile
    params: Tuple[str, ...] = ()

    @property
    def is_method(self) -> bool:
        return self.cls is not None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<fn {self.qualname}>"


@dataclass
class ClassInfo:
    """One class in the indexed tree."""

    qualname: str                #: ``module:Class``
    module: str
    name: str
    node: ast.ClassDef
    sf: SourceFile
    bases: Tuple[str, ...] = ()  #: base names as written (dotted text)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)

    def base_tails(self) -> Tuple[str, ...]:
        """Last segment of each base name (``locks.base.DistributedLock``
        → ``DistributedLock``)."""
        return tuple(b.rsplit(".", 1)[-1] for b in self.bases)


class ProjectIndex:
    """Modules, classes, functions and the call graph of one lint run."""

    def __init__(self) -> None:
        self.files: List[SourceFile] = []
        self.modules: Dict[str, SourceFile] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: simple function name -> sorted qualnames (for unique-name fallback)
        self._by_name: Dict[str, List[str]] = {}
        #: (module, name) -> qualname for module-level functions
        self._module_funcs: Dict[Tuple[str, str], str] = {}
        #: module -> {local alias -> imported dotted target}
        self._imports: Dict[str, Dict[str, str]] = {}
        #: class simple name -> sorted class qualnames
        self._classes_by_name: Dict[str, List[str]] = {}
        self._callee_cache: Dict[str, Tuple[FunctionInfo, ...]] = {}

    # -- construction ------------------------------------------------------
    @classmethod
    def build(cls, files: Sequence[SourceFile]) -> "ProjectIndex":
        index = cls()
        for sf in sorted(files, key=lambda s: s.display):
            index._add_file(sf)
        for table in (index._by_name, index._classes_by_name):
            for key in table:
                table[key].sort()
        return index

    def _add_file(self, sf: SourceFile) -> None:
        self.files.append(sf)
        self.modules[sf.module] = sf
        imports: Dict[str, str] = {}
        self._imports[sf.module] = imports
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    imports[alias.asname or alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"
        for stmt in sf.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(sf, stmt, cls_name=None)
            elif isinstance(stmt, ast.ClassDef):
                self._add_class(sf, stmt)

    def _add_class(self, sf: SourceFile, node: ast.ClassDef) -> None:
        qualname = f"{sf.module}:{node.name}"
        bases = tuple(t for t in (expr_text(b) for b in node.bases) if t)
        info = ClassInfo(qualname=qualname, module=sf.module, name=node.name,
                         node=node, sf=sf, bases=bases)
        self.classes[qualname] = info
        self._classes_by_name.setdefault(node.name, []).append(qualname)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods[stmt.name] = self._add_function(
                    sf, stmt, cls_name=node.name)

    def _add_function(self, sf: SourceFile, node: ast.AST,
                      cls_name: Optional[str]) -> FunctionInfo:
        name = node.name  # type: ignore[attr-defined]
        qual = (f"{sf.module}:{cls_name}.{name}" if cls_name
                else f"{sf.module}:{name}")
        args = node.args  # type: ignore[attr-defined]
        params = tuple(a.arg for a in
                       [*args.posonlyargs, *args.args, *args.kwonlyargs])
        info = FunctionInfo(qualname=qual, module=sf.module, name=name,
                            cls=cls_name, node=node, sf=sf, params=params)
        self.functions[qual] = info
        self._by_name.setdefault(name, []).append(qual)
        if cls_name is None:
            self._module_funcs[(sf.module, name)] = qual
        return info

    # -- class hierarchy ---------------------------------------------------
    def subclasses_of(self, base_name: str) -> List[ClassInfo]:
        """Indexed classes deriving (transitively, by base *name*) from
        ``base_name``.  Matching is on the last segment of the written
        base, so both ``DistributedLock`` and ``base.DistributedLock``
        count — the base itself need not be indexed (fixtures)."""
        roots = {base_name}
        out: List[ClassInfo] = []
        changed = True
        matched: set = set()
        while changed:
            changed = False
            for qual in sorted(self.classes):
                if qual in matched:
                    continue
                info = self.classes[qual]
                if any(tail in roots for tail in info.base_tails()):
                    matched.add(qual)
                    roots.add(info.name)
                    out.append(info)
                    changed = True
        out.sort(key=lambda c: c.qualname)
        return out

    def mro_method(self, cls_info: ClassInfo, name: str) -> Optional[FunctionInfo]:
        """Look up ``name`` through ``cls_info`` and its indexed base
        chain (depth-first over base names, cycles guarded)."""
        seen: set = set()
        stack = [cls_info]
        while stack:
            cur = stack.pop(0)
            if cur.qualname in seen:
                continue
            seen.add(cur.qualname)
            if name in cur.methods:
                return cur.methods[name]
            for tail in cur.base_tails():
                for qual in self._classes_by_name.get(tail, ()):
                    stack.append(self.classes[qual])
        return None

    # -- call resolution ---------------------------------------------------
    def resolve_call(self, call: ast.Call,
                     caller: FunctionInfo) -> List[FunctionInfo]:
        """May-callees of one call site (empty when nothing indexed
        plausibly matches — e.g. stdlib or simulator-machinery calls,
        which analyses model as intrinsics instead)."""
        func = call.func
        # self.m(...) — resolve through the receiver class's chain.
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in ("self", "cls") and caller.cls):
            cls_info = self.classes.get(f"{caller.module}:{caller.cls}")
            if cls_info is not None:
                hit = self.mro_method(cls_info, func.attr)
                if hit is not None:
                    return [hit]
            return self._by_unique_name(func.attr)
        # bare f(...) — same module, then imports.
        if isinstance(func, ast.Name):
            qual = self._module_funcs.get((caller.module, func.id))
            if qual is not None:
                return [self.functions[qual]]
            target = self._imports.get(caller.module, {}).get(func.id)
            if target is not None:
                return self._resolve_dotted(target)
            # nested def in the same function body
            for sub in ast.walk(caller.node):
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                        and sub is not caller.node and sub.name == func.id:
                    nested = FunctionInfo(
                        qualname=f"{caller.qualname}.<{func.id}>",
                        module=caller.module, name=func.id, cls=caller.cls,
                        node=sub, sf=caller.sf)
                    return [nested]
            return []
        # mod.f(...) / pkg.mod.f(...) via the import table.
        dotted = expr_text(func)
        if dotted is not None and "." in dotted:
            head, rest = dotted.split(".", 1)
            target = self._imports.get(caller.module, {}).get(head)
            if target is not None:
                return self._resolve_dotted(f"{target}.{rest}")
        # obj.m(...) — unique-name fallback.
        if isinstance(func, ast.Attribute):
            return self._by_unique_name(func.attr)
        return []

    def _resolve_dotted(self, dotted: str) -> List[FunctionInfo]:
        """``pkg.mod.func`` / ``pkg.mod.Class.meth`` against the index."""
        if ":" not in dotted and "." in dotted:
            mod, name = dotted.rsplit(".", 1)
            qual = self._module_funcs.get((mod, name))
            if qual is not None:
                return [self.functions[qual]]
            if "." in mod:
                outer, cls_name = mod.rsplit(".", 1)
                cls_info = self.classes.get(f"{outer}:{cls_name}")
                if cls_info is not None and name in cls_info.methods:
                    return [cls_info.methods[name]]
        return []

    def _by_unique_name(self, name: str) -> List[FunctionInfo]:
        quals = self._by_name.get(name, [])
        if len(quals) == 1:
            return [self.functions[quals[0]]]
        return []

    # -- call graph --------------------------------------------------------
    def calls_in(self, fn: FunctionInfo) -> Iterator[ast.Call]:
        """Call nodes lexically inside ``fn`` (nested defs included —
        their calls run under the enclosing function's dynamic extent
        for the closure-predicate patterns the deep pass cares about)."""
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                yield node

    def callees(self, fn: FunctionInfo) -> Tuple[FunctionInfo, ...]:
        cached = self._callee_cache.get(fn.qualname)
        if cached is not None:
            return cached
        out: Dict[str, FunctionInfo] = {}
        for call in self.calls_in(fn):
            for callee in self.resolve_call(call, fn):
                out.setdefault(callee.qualname, callee)
        result = tuple(out[q] for q in sorted(out))
        self._callee_cache[fn.qualname] = result
        return result

    def reachable_from(self, roots: Sequence[FunctionInfo]) -> List[FunctionInfo]:
        """Call-graph closure of ``roots`` (roots included), sorted by
        qualname."""
        seen: Dict[str, FunctionInfo] = {}
        stack = list(roots)
        while stack:
            fn = stack.pop()
            if fn.qualname in seen:
                continue
            seen[fn.qualname] = fn
            stack.extend(self.callees(fn))
        return [seen[q] for q in sorted(seen)]
