"""Post-mortem rendering: ``python -m repro.obs.report <dump.json>``.

Turns a post-mortem dump (see :mod:`repro.obs.postmortem`) into the
report a human reads first: what failed, the trailing event timeline,
what every client last did and is now parked on, the lock/holder chain,
the wait-for cycle (if any), and a *suspected rule* — the simlint
deep-pass family (``deep-lockset`` / ``deep-protocol`` P1–P3 /
``deep-blocking`` B1–B3) whose failure shape the dump most resembles,
as a starting point for the code hunt.

``--perfetto out.json`` additionally writes the flight-event window as
a Chrome/Perfetto trace slice (instant events per actor, same
byte-determinism discipline as :mod:`repro.obs.export`).

The tool also reads counterexample-corpus entries (schema
``alock-corpus/1``, see :mod:`repro.schedcheck.corpus`): it prints the
entry header — scenario recipe, minimized decision string, replay
command — and then renders the referenced post-mortem dump, resolved
relative to the entry file.

``--selftest`` runs a seeded exploration of the ``lost_wakeup`` seeded
bug and prints the first failure's dump and report — the tier-1
determinism gate runs it under different ``PYTHONHASHSEED`` values and
asserts byte-identical output.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.obs.postmortem import render_cycle

#: timeline rows shown by default
TIMELINE_LIMIT = 40


# -- suspected-rule heuristic -------------------------------------------

def suspect_rule(dump: dict) -> str:
    """Map the dump's failure shape onto the simlint deep-pass
    vocabulary.  A heuristic, not a verdict: it names the rule family
    whose canonical failure the evidence most resembles."""
    reason = dump.get("reason", "")
    events = dump.get("events", [])
    kinds = [e[2] for e in events]
    waits = {e[1]: e[3] for e in events if e[2] == "lock.wait"}
    if reason == "lease-expiry":
        return ("deep-blocking B3 (unbounded block during handover): a "
                "holder sat on the lock past its lease")
    if reason == "checker":
        return ("deep-lockset (acquire/release pairing): a completed run "
                "failed post-hoc invariants — look for a path that exits "
                "the critical section without its release obligation")
    if reason == "exception":
        return ("deep-protocol P3 (use-after-relinquish) or a lockset "
                "violation: a client died mid-protocol — read the error "
                "and its last verbs below")
    if reason in ("deadlock", "stall"):
        parked_words = [str(w[1]) for w in waits.values() if len(w) > 1]
        if any("budget" in w for w in parked_words):
            return ("deep-protocol P1 (wait-predicate completeness): "
                    "clients parked on a budget word whose wake "
                    "conditions exclude a reachable state")
        if "fault.stall" in kinds or "fault.drop" in kinds:
            return ("deep-blocking B3 (unbounded block during handover) "
                    "under fault injection: the handoff write was lost "
                    "or delayed past every waiter's watch")
        if reason == "deadlock":
            return ("deep-blocking B1 (raw check-then-park): the "
                    "schedule drained with waiters parked — a wakeup "
                    "write landed between a check and its park")
        return ("deep-blocking B2 (blocking wait predicate) or "
                "starvation: events still flowed at the deadline but "
                "these clients made no progress")
    return "no matching deep-pass rule; read the timeline"


# -- plain-text report ---------------------------------------------------

def render_report(dump: dict, timeline: int = TIMELINE_LIMIT) -> str:
    """The human-readable post-mortem."""
    lines: list[str] = []
    add = lines.append
    add(f"== post-mortem: {dump.get('reason', '?')} "
        f"at {dump.get('sim_now_ns', 0):.0f} ns ==")
    detail = dump.get("detail", "")
    if detail:
        add(f"detail: {detail}")
    if dump.get("error"):
        add(f"error: {dump['error']}")

    locks = dump.get("locks", [])
    held = [lk for lk in locks if lk.get("holder")]
    if held:
        add("")
        add("-- holder chain --")
        for lk in held:
            words = " ".join(f"{k}={v}" for k, v in
                             sorted(lk.get("words", {}).items()))
            add(f"  {lk['name']}: held by {lk['holder']} since "
                f"{lk.get('holder_since_ns', 0):.0f} ns "
                f"({lk.get('acquisitions', 0)} acquisitions; {words})")

    wf = dump.get("wait_for", {})
    if wf.get("edges"):
        add("")
        add("-- wait-for graph --")
        for src, dst in wf["edges"]:
            add(f"  {src} -> {dst}")
        for cyc in wf.get("cycles", []):
            add(f"  CYCLE: {render_cycle(cyc)}")
        if not wf.get("cycles"):
            add("  (no cycle: waiters block on words no live holder owns)")

    procs = dump.get("processes", [])
    if procs:
        add("")
        add("-- parked clients --")
        for p in procs:
            add(f"  {p['name']} (pid {p['pid']}): last resumed at "
                f"{p.get('last_resumed_ns', 0):.0f} ns, "
                f"waiting on {p.get('waiting_on', '?')}")

    last = dump.get("last_action", {})
    if last:
        add("")
        add("-- last action per actor --")
        for actor in sorted(last):
            t, kind, det = last[actor]
            det_s = " ".join(str(d) for d in det)
            add(f"  {actor}: {kind} {det_s} at {t:.0f} ns")

    events = dump.get("events", [])
    if events:
        add("")
        add(f"-- timeline (last {min(timeline, len(events))} "
            f"of {len(events)} recorded events) --")
        for t, actor, kind, det in events[-timeline:]:
            det_s = " ".join(str(d) for d in det)
            add(f"  {t:>12.1f} ns  {actor:<10} {kind:<14} {det_s}")

    sched = dump.get("sched", {})
    if sched.get("decisions") is not None:
        add("")
        add(f"replay: decisions \"{sched['decisions'] or '(default)'}\" "
            f"({sched.get('decision_count', 0)} choice points)")
    add("")
    add(f"suspected rule: {suspect_rule(dump)}")
    return "\n".join(lines)


# -- corpus entries ------------------------------------------------------

#: matches repro.schedcheck.corpus.SCHEMA (string literal so this
#: reader stays importable without the schedcheck package)
CORPUS_SCHEMA = "alock-corpus/1"


def render_corpus_entry(payload: dict, base_dir: str = "",
                        timeline: int = TIMELINE_LIMIT) -> str:
    """A corpus entry's header plus — when its ``dump_ref`` resolves on
    disk relative to ``base_dir`` — the referenced post-mortem report."""
    lines: list[str] = []
    add = lines.append
    add(f"== corpus entry: {payload.get('name', '?')} "
        f"({payload.get('failure_kind', '?')}) ==")
    scenario = payload.get("scenario", {})
    opts = " ".join(f"{k}={v}" for k, v in scenario.get("lock_options", []))
    add(f"scenario: {scenario.get('lock_kind', '?')} "
        f"nodes={scenario.get('n_nodes', '?')} "
        f"threads={scenario.get('threads_per_node', '?')} "
        f"ops={scenario.get('ops_per_thread', '?')} "
        f"seed={scenario.get('seed', '?')}"
        + (f" [{opts}]" if opts else "")
        + (" +faults" if scenario.get("faults") else ""))
    add(f"decisions: \"{payload.get('decisions', '')}\"  "
        f"execution digest {payload.get('digest', '?')}")
    if payload.get("detail"):
        add(f"detail: {payload['detail']}")
    prov = payload.get("provenance", {})
    if prov:
        prov_s = " ".join(f"{k}={v}" for k, v in sorted(prov.items()))
        add(f"provenance: {prov_s}")
    add("replay: alock-experiments explore --replay "
        f"\"{payload.get('decisions', '') or '-'}\" "
        f"--lock {scenario.get('lock_kind', '?')}"
        f" --nodes {scenario.get('n_nodes', '?')}"
        f" --threads {scenario.get('threads_per_node', '?')}"
        f" --ops {scenario.get('ops_per_thread', '?')}"
        f" --scenario-seed {scenario.get('seed', '?')}"
        + "".join(f" --lock-option {k}={v}"
                  for k, v in scenario.get("lock_options", [])))
    dump_ref = payload.get("dump_ref")
    if dump_ref:
        dump_path = os.path.join(base_dir, dump_ref)
        if os.path.exists(dump_path):
            with open(dump_path, encoding="utf-8") as fh:
                dump = json.load(fh)
            add("")
            add(render_report(dump, timeline=timeline))
        else:
            add(f"(referenced dump {dump_ref} not found under "
                f"{base_dir or '.'})")
    else:
        add("(no post-mortem dump recorded for this entry)")
    return "\n".join(lines)


# -- Perfetto trace slice ------------------------------------------------

def perfetto_events(dump: dict) -> list[dict]:
    """Flight window as Chrome trace *instant* events, one tid per
    actor (sorted), timestamps in microseconds."""
    events: list[dict] = [
        {"ph": "M", "name": "process_name", "pid": 1, "tid": 0,
         "args": {"name": f"postmortem:{dump.get('reason', '?')}"}}]
    actors = sorted({e[1] for e in dump.get("events", [])})
    tids = {actor: i for i, actor in enumerate(actors, start=1)}
    for actor in actors:
        events.append({"ph": "M", "name": "thread_name", "pid": 1,
                       "tid": tids[actor], "args": {"name": actor}})
    for i, (t, actor, kind, det) in enumerate(dump.get("events", [])):
        events.append({
            "ph": "i",
            "s": "t",
            "name": kind,
            "cat": kind.split(".", 1)[0],
            "pid": 1,
            "tid": tids[actor],
            "ts": t / 1e3,
            "args": {"detail": [str(d) for d in det], "seq": i},
        })
    return events


def perfetto_json(dump: dict) -> str:
    doc = {"traceEvents": perfetto_events(dump),
           "displayTimeUnit": "ns",
           "otherData": {"clock": "simulated", "source": "postmortem"}}
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


# -- selftest (determinism gate) -----------------------------------------

def selftest_output() -> str:
    """Deterministic canary: explore the seeded ``lost_wakeup`` bug,
    print the first failure's dump JSON and its rendered report."""
    from repro.schedcheck.explore import explore_random
    from repro.schedcheck.scenario import LockScenario

    scenario = LockScenario(
        lock_kind="mcs", n_nodes=1, threads_per_node=3, ops_per_thread=3,
        seed=0, lock_options=(("bug", "lost_wakeup"),
                              ("poll_interval_ns", 200.0)))
    report = explore_random(scenario, 50, seed=1, stop_on_failure=True)
    failure = report.first_failure
    if failure is None or failure.dump is None:  # pragma: no cover
        return "selftest: no failure found"
    dump = json.loads(failure.dump)
    return "\n".join([
        f"dump={failure.dump}",
        f"perfetto={perfetto_json(dump)}",
        render_report(dump),
    ])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Render a post-mortem dump into a human-readable report.")
    parser.add_argument("dump", nargs="?",
                        help="path to a post-mortem JSON file ('-' = stdin)")
    parser.add_argument("--perfetto", metavar="PATH",
                        help="also write the event window as a Perfetto "
                             "trace slice")
    parser.add_argument("--timeline", type=int, default=TIMELINE_LIMIT,
                        help="timeline rows to show (default %(default)s)")
    parser.add_argument("--selftest", action="store_true",
                        help="run the seeded determinism canary and print "
                             "its dump + report")
    args = parser.parse_args(argv)
    if args.selftest:
        print(selftest_output())
        return 0
    if not args.dump:
        parser.error("a dump path is required (or --selftest)")
    if args.dump == "-":
        dump = json.load(sys.stdin)
        base_dir = ""
    else:
        with open(args.dump, encoding="utf-8") as fh:
            dump = json.load(fh)
        base_dir = os.path.dirname(os.path.abspath(args.dump))
    if dump.get("schema") == CORPUS_SCHEMA:
        print(render_corpus_entry(dump, base_dir=base_dir,
                                  timeline=args.timeline))
        return 0
    print(render_report(dump, timeline=args.timeline))
    if args.perfetto:
        with open(args.perfetto, "w", encoding="utf-8") as fh:
            fh.write(perfetto_json(dump))
        print(f"perfetto trace written to {args.perfetto}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
