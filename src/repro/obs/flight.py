"""Always-on flight recorder: a bounded ring of protocol events.

Unlike the opt-in spans/metrics of PR 3 (forward-looking, sized for
analysis), the flight recorder is the *backward-looking* half of the
observability story: a fixed-capacity ``deque`` of plain tuples that is
on for every cluster and cheap enough to forget about.  When anything
fails — sim deadlock, schedcheck stall, crashed sweep cell, lease
expiry — the post-mortem engine (:mod:`repro.obs.postmortem`) freezes
the last-N window of this ring into the dump, so every failure carries
the protocol history that led up to it.

Cost discipline (the <3% budget gated by ``bench_obs`` and the CI bench
baseline):

* one tuple + one ``deque.append`` per note — eviction is C-speed via
  ``maxlen``, never a Python branch;
* notes only at protocol chokepoints (verb issue/timeout, lock
  transitions, descriptor lifecycle, fault injections, lease expiry,
  schedule tie-breaks) — never per sim event;
* every call site guards on ``recorder is not None`` (the
  guarded-trace-site pattern from the PR 5 hot-path pass, enforced by
  simlint's ``guarded-trace-site`` rule), so raw-``Environment`` code
  paths and flight-off benchmark runs pay a single attribute test.

Event vocabulary (the ``kind`` strings):

==================  ====================================================
``verb.issue``      an RDMA verb left a thread (detail: verb, dst node)
``verb.timeout``    retry budget exhausted (detail: verb)
``fault.drop``      injector dropped a verb (detail: verb, cause)
``fault.delay``     injector delayed a verb (detail: verb, delay ns)
``fault.stall``     injector froze a holder (detail: stall ns)
``lock.acquired``   lock handover observed (detail: lock name)
``lock.released``   lock released (detail: lock name)
``desc.begin``      queue descriptor armed (detail: desc label) —
                    retirement is implied by the label's next begin
``lease.expired``   locktable lease ran out (detail: lock name)
``sched.tiebreak``  policy chose among same-time events (detail: index,
                    fanout) — policy runs only, actor ``"sched"``
==================  ====================================================
"""

from __future__ import annotations

from collections import deque
from typing import Optional

#: Default ring capacity.  1024 events still cover hundreds of lock
#: handovers of history — far more than any post-mortem window needs —
#: and the size matters for speed, not just memory: the ring's retained
#: tuples are the recorder's cache-resident footprint, and a capacity
#: sweep on the CI bench workload showed the wall overhead tracking
#: capacity (4096 ≈ 6%, 1024 ≈ 3.5%, 256 ≈ 2.5% paired-median delta)
#: while the pure ``note()`` cost stayed ~1% — eviction pressure, not
#: appends, is what a too-large ring buys.
DEFAULT_CAPACITY = 1024


class FlightEvent(tuple):
    """A recorded note: ``(t_ns, actor, kind, detail)``.

    Kept as a tuple subclass (not a dataclass) so recording stays a bare
    tuple allocation; the named accessors exist for readers only.
    """

    __slots__ = ()

    @property
    def t_ns(self) -> float:
        return self[0]

    @property
    def actor(self) -> str:
        return self[1]

    @property
    def kind(self) -> str:
        return self[2]

    @property
    def detail(self) -> tuple:
        return self[3]


class FlightRecorder:
    """Bounded, allocation-light ring of :class:`FlightEvent` tuples.

    Args:
        env: simulation environment (timestamps come from ``env.now``).
        capacity: ring size; oldest events are evicted in C.
    """

    __slots__ = ("env", "capacity", "_ring", "_append")

    def __init__(self, env, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError(f"flight ring capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        self._append = self._ring.append

    # -- recording (the hot side) --------------------------------------
    def note(self, actor: str, kind: str, *detail: object) -> None:
        """Append one event.  Call sites guard on ``recorder is not
        None`` so this body never needs its own enabled test.  Reads the
        clock via ``env._now`` (not the ``now`` property) and appends
        through a pre-bound method: this body is the recorder's entire
        steady-state cost, paid a few thousand times per run."""
        self._append((self.env._now, actor, kind, detail))

    # -- reading (the cold side) ---------------------------------------
    def __len__(self) -> int:
        return len(self._ring)

    def window(self, last: Optional[int] = None) -> list[FlightEvent]:
        """The most recent ``last`` events, oldest first (whole ring if
        ``last`` is None or exceeds the ring)."""
        ring = self._ring
        if last is None or last >= len(ring):
            return [FlightEvent(e) for e in ring]
        # deque slicing is unsupported; islice from the left is O(n) —
        # fine on the cold read side.
        start = len(ring) - last
        return [FlightEvent(e) for i, e in enumerate(ring) if i >= start]

    def last_actions(self) -> dict[str, FlightEvent]:
        """Each actor's most recent event, keyed by actor, sorted keys."""
        latest: dict[str, FlightEvent] = {}
        for e in self._ring:
            latest[e[1]] = FlightEvent(e)
        return {actor: latest[actor] for actor in sorted(latest)}

    def filtered(self, kind_prefix: str) -> list[FlightEvent]:
        """Events whose kind starts with ``kind_prefix``, oldest first."""
        return [FlightEvent(e) for e in self._ring if e[2].startswith(kind_prefix)]

    def clear(self) -> None:
        self._ring.clear()
