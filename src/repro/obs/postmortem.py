"""Failure snapshots: freeze the evidence at the moment something breaks.

A *post-mortem dump* is a plain-JSON snapshot assembled from things the
simulation already tracks — the flight ring
(:mod:`repro.obs.flight`), the process registry's parked-on
descriptions, the lock oracle state, and the labeled protocol words —
taken when a failure is detected: sim deadlock, schedcheck
stall/checker violation, uncaught exception in a sweep cell, or a
lease expiry in the lock table.

The centerpiece is the **wait-for graph**: edges from waiting actors to
the lock word they are parked on (from ``lock.wait`` flight events not
yet discharged by a ``lock.acquired``) and from each word to the actor
currently holding its lock (oracle ``holder_gid``).  Deterministic
cycle detection turns "schedule drained (deadlock?)" into a named cycle
like ``t1@n0 → alock[k7].tail_l → t0@n0 → …``.

Everything here is cold-path and byte-deterministic: iteration is over
sorted or ring-ordered data, and :func:`dump_json` serializes with
``sort_keys`` — the same discipline as the PR 3 exporters, gated the
same way (same seed + same schedule ⇒ byte-identical dump).
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Optional

from repro.common.ids import split_global_thread_id
from repro.sim.core import _describe_wait

SCHEMA = "alock-postmortem/1"

#: default number of trailing flight events frozen into a dump
DEFAULT_WINDOW = 128

#: environment variable naming a directory for dump files; when set,
#: failure sites persist their post-mortems there (CI uploads the
#: directory as an artifact when a gate fails).
DUMP_DIR_ENV = "ALOCK_POSTMORTEM_DIR"


def _holder_actor(gid: int) -> Optional[str]:
    if gid == 0:
        return None
    node, thread = split_global_thread_id(gid)
    return f"t{thread}@n{node}"


def _jsonable(value):
    """Coerce flight-event detail items to JSON-safe primitives."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


# -- wait-for graph -----------------------------------------------------

def wait_for_graph(events, lock_holders: dict) -> dict:
    """Build the wait-for graph from flight events + oracle holders.

    Args:
        events: iterable of ``(t, actor, kind, detail)`` flight tuples,
            oldest first.
        lock_holders: lock name -> holder actor (or None when free).

    Returns ``{"edges": [[src, dst], ...], "cycles": [[n1, n2, ...], ...]}``
    with edges sorted and cycles discovered by deterministic DFS.  Each
    cycle is reported once, starting from its lexicographically smallest
    node.
    """
    # Last undischarged wait per actor: a lock.wait opens it, a
    # lock.acquired on the same lock discharges it.
    pending: dict[str, tuple[str, str]] = {}
    for ev in events:
        actor, kind, detail = ev[1], ev[2], ev[3]
        if kind == "lock.wait":
            pending[actor] = (str(detail[0]), str(detail[1]))
        elif kind == "lock.acquired":
            cur = pending.get(actor)
            if cur is not None and cur[0] == str(detail[0]):
                del pending[actor]
    edges: set[tuple[str, str]] = set()
    for actor in sorted(pending):
        lock_name, word = pending[actor]
        word_node = f"{lock_name}.{word}"
        edges.add((actor, word_node))
        holder = lock_holders.get(lock_name)
        if holder is not None and holder != actor:
            edges.add((word_node, holder))
    adjacency: dict[str, list[str]] = {}
    for src, dst in sorted(edges):
        adjacency.setdefault(src, []).append(dst)
    cycles = _find_cycles(adjacency)
    return {"edges": [list(e) for e in sorted(edges)], "cycles": cycles}


def _find_cycles(adjacency: dict[str, list[str]]) -> list[list[str]]:
    """Every elementary cycle reachable in ``adjacency`` via sorted DFS,
    canonicalized (rotated to start at the smallest node) and deduped."""
    seen_cycles: set[tuple[str, ...]] = set()
    cycles: list[list[str]] = []
    for root in sorted(adjacency):
        stack = [root]
        on_path = {root: 0}

        def dfs(node: str) -> None:
            for nxt in adjacency.get(node, ()):
                pos = on_path.get(nxt)
                if pos is not None:
                    cyc = stack[pos:]
                    pivot = min(range(len(cyc)), key=lambda i: cyc[i])
                    canon = tuple(cyc[pivot:] + cyc[:pivot])
                    if canon not in seen_cycles:
                        seen_cycles.add(canon)
                        cycles.append(list(canon))
                    continue
                on_path[nxt] = len(stack)
                stack.append(nxt)
                dfs(nxt)
                stack.pop()
                del on_path[nxt]

        dfs(root)
    return cycles


def render_cycle(cycle: list[str]) -> str:
    """``["a", "x.tail", "b"]`` → ``"a → x.tail → b → a"``."""
    return " → ".join(cycle + cycle[:1])


# -- snapshot assembly --------------------------------------------------

def snapshot(cluster, *, reason: str, detail: str = "", table=None,
             decisions: Optional[str] = None, error: Optional[str] = None,
             window: int = DEFAULT_WINDOW) -> dict:
    """Assemble a post-mortem dict for ``cluster`` at the current instant.

    Args:
        cluster: the failed run's cluster.
        reason: failure taxonomy tag (``"deadlock"``, ``"stall"``,
            ``"checker"``, ``"exception"``, ``"lease-expiry"``).
        detail: free-text one-liner (e.g. the exception message).
        table: the :class:`~repro.locktable.DistributedLockTable`, when
            one exists — adds per-lock oracle state, labeled word values
            and the wait-for graph's holder edges.
        decisions: schedcheck sparse decision string, when the failure
            came from an explored schedule — stored verbatim so the dump
            is replayable (``explore --replay``).
        error: ``repr`` of the raised exception, if any.
        window: trailing flight events to freeze.
    """
    env = cluster.env
    flight = cluster.flight
    # The frozen event timeline is bounded to ``window``, but the
    # wait-for graph scans the whole ring: a hot spinner's verb events
    # can evict another client's lock.wait from the tail window.
    all_events = flight.window() if flight is not None else []
    events = all_events[-window:] if window else all_events
    last = flight.last_actions() if flight is not None else {}

    processes = []
    for p in env.alive_processes():
        processes.append({
            "name": p.name,
            "pid": p.pid,
            "last_resumed_ns": p.last_resumed_at,
            "waiting_on": _describe_wait(p._waiting_on),
        })

    locks = []
    lock_holders: dict[str, Optional[str]] = {}
    descriptors: dict[str, int] = {}
    if table is not None:
        words_by_lock: dict[str, dict[str, int]] = {
            e.lock.name: {} for e in table.entries}
        for region in cluster.regions:
            for addr in sorted(region._labels):
                label = str(region._labels[addr])
                prefix, _, field = label.rpartition(".")
                if prefix in words_by_lock:
                    words_by_lock[prefix][field] = region.peek(addr)
                elif label.startswith(("desc[", "mcsdesc[")):
                    descriptors[label] = (region.peek_signed(addr)
                                          if field == "budget"
                                          else region.peek(addr))
        for e in table.entries:
            lk = e.lock
            holder = _holder_actor(lk.holder_gid)
            lock_holders[lk.name] = holder
            locks.append({
                "name": lk.name,
                "index": e.index,
                "home_node": e.home_node,
                "holder": holder,
                "holder_gid": lk.holder_gid,
                "holder_since_ns": lk.holder_since,
                "acquisitions": lk.acquisitions,
                "words": words_by_lock.get(lk.name, {}),
            })

    dump = {
        "schema": SCHEMA,
        "reason": reason,
        "detail": detail,
        "sim_now_ns": env.now,
        "events": [[e[0], e[1], e[2], [_jsonable(d) for d in e[3]]]
                   for e in events],
        "last_action": {a: [e[0], e[2], [_jsonable(d) for d in e[3]]]
                        for a, e in last.items()},
        "processes": processes,
        "locks": locks,
        "descriptors": descriptors,
        "wait_for": wait_for_graph(all_events, lock_holders),
        "counters": {
            "verbs": dict(cluster.network.verb_counts),
            "loopback_verbs": cluster.network.loopback_verbs,
            "events_processed": env.event_count,
        },
        "sched": {
            "decisions": decisions,
            "decision_count": len(env.schedule_decisions),
            "fanout_count": len(env.schedule_fanouts),
        },
    }
    if error is not None:
        dump["error"] = error
    if table is not None:
        dump["recovery"] = table.recovery_stats()
    return dump


def dump_json(dump: dict) -> str:
    """Canonical byte-deterministic serialization of a dump."""
    return json.dumps(dump, sort_keys=True, separators=(",", ":"))


def attach(exc: BaseException, cluster, *, reason: str, detail: str = "",
           table=None) -> BaseException:
    """Hang a post-mortem dump on ``exc`` (as ``exc._postmortem``) and
    persist it if ``$ALOCK_POSTMORTEM_DIR`` is set.

    Returns ``exc`` so call sites can ``raise attach(exc, ...)``.  The
    dump rides the exception across layers — the sweep engine pulls it
    off a failed cell's error and stores it on the
    :class:`~repro.parallel.cells.CellResult`.
    """
    dump = dump_json(snapshot(cluster, reason=reason, detail=detail,
                              table=table, error=repr(exc)))
    exc._postmortem = dump
    maybe_write_dump(dump, reason)
    return exc


def maybe_write_dump(dump_str: str, tag: str) -> Optional[str]:
    """Persist ``dump_str`` under ``$ALOCK_POSTMORTEM_DIR`` if set.

    Returns the written path, or None when the env var is unset.  The
    filename is content-addressed so identical failures collapse and
    concurrent writers (sweep workers) never collide.
    """
    out_dir = os.environ.get(DUMP_DIR_ENV)
    if not out_dir:
        return None
    digest = hashlib.blake2b(dump_str.encode("utf-8"), digest_size=8).hexdigest()
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"postmortem-{tag}-{digest}.json")
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(dump_str)
    os.replace(tmp, path)
    return path
