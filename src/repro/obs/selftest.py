"""Determinism self-test: ``python -m repro.obs.selftest``.

Runs one small instrumented workload and prints the full Perfetto trace
JSON and flat metrics JSON to stdout.  The tier-1 gate test runs this
module under different ``PYTHONHASHSEED`` values and asserts the output
is **byte-identical** — the observability layer's ordering discipline
(insertion-ordered dicts, sorted snapshots, ``sort_keys`` JSON) is
thereby enforced end to end, not just unit by unit.
"""

from __future__ import annotations

from repro.obs import ObsConfig
from repro.obs.capture import CapturedRun
from repro.obs.export import metrics_json, trace_json
from repro.obs.phases import extract_operations, phase_summary
from repro.workload.runner import run_workload
from repro.workload.spec import WorkloadSpec


def selftest_output(seed: int = 3) -> str:
    """The canonical output string (exposed for in-process tests)."""
    spec = WorkloadSpec(
        n_nodes=3, threads_per_node=2, n_locks=6, locality_pct=75.0,
        ops_per_thread=8, cs_ns=300.0, seed=seed, lock_kind="alock",
        audit="off")
    result = run_workload(spec, obs=ObsConfig(spans=True, metrics=True))
    run = CapturedRun("obs-selftest", result.spans, result.obs_metrics)
    ops = extract_operations(result.spans)
    lines = [
        f"ops={len(ops)}",
        f"phase_summary={sorted(phase_summary(ops).items())}",
        f"trace={trace_json([run])}",
        f"metrics={metrics_json([run])}",
    ]
    return "\n".join(lines)


if __name__ == "__main__":
    print(selftest_output())
