"""Exporters: Chrome/Perfetto trace-event JSON and flat metrics JSON.

The trace format is the Chrome ``trace_event`` JSON array-of-objects
format (``{"traceEvents": [...]}``), which https://ui.perfetto.dev and
``chrome://tracing`` both load directly.  Each finished span becomes a
complete event (``"ph": "X"``); timestamps are microseconds, so sim-ns
divide by 1e3.  Each captured run becomes one "process" (pid), each
actor one "thread" (tid), named via metadata events.

Byte determinism: every dict is serialised with ``sort_keys=True``,
events are emitted in ``(pid, tid, ts, span_id)`` order, and tids are
assigned from *sorted* actor names — so the output is identical across
``PYTHONHASHSEED`` values and across runs (the gate test hashes it).
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.obs.spans import Span


def trace_events(runs: Sequence) -> list[dict]:
    """Flatten captured runs (objects with ``label``/``spans``) into a
    Chrome trace-event list."""
    events: list[dict] = []
    for pid, run in enumerate(runs, start=1):
        events.append({"ph": "M", "name": "process_name", "pid": pid,
                       "tid": 0, "args": {"name": run.label}})
        actors = sorted({s.actor for s in run.spans})
        tids = {actor: i for i, actor in enumerate(actors, start=1)}
        for actor in actors:
            events.append({"ph": "M", "name": "thread_name", "pid": pid,
                           "tid": tids[actor], "args": {"name": actor}})
        spans = sorted((s for s in run.spans if s.finished),
                       key=lambda s: (tids[s.actor], s.start_ns, s.span_id))
        for s in spans:
            args = {"span_id": s.span_id, "parent_id": s.parent_id}
            args.update(s.attrs)
            events.append({
                "ph": "X",
                "name": s.name,
                "cat": s.name.split(".", 1)[0],
                "pid": pid,
                "tid": tids[s.actor],
                "ts": s.start_ns / 1e3,
                "dur": s.duration_ns / 1e3,
                "args": args,
            })
    return events


def trace_json(runs: Sequence) -> str:
    doc = {"traceEvents": trace_events(runs),
           "displayTimeUnit": "ns",
           "otherData": {"clock": "simulated", "time_unit_in": "ns"}}
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def write_trace(path: str, runs: Sequence) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(trace_json(runs))


def metrics_json(runs: Sequence) -> str:
    """Flat metrics document: one entry per run (objects with ``label``
    and a ``metrics`` tree from ``MetricsRegistry.collect()``)."""
    doc = {"runs": [{"label": run.label, "metrics": _flatten(run.metrics)}
                    for run in runs]}
    return json.dumps(doc, sort_keys=True, separators=(",", ":"), indent=None)


def write_metrics(path: str, runs: Sequence) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(metrics_json(runs))


def _flatten(tree) -> dict:
    out: dict = {}

    def walk(prefix: str, node) -> None:
        if isinstance(node, dict):
            for k in sorted(node, key=str):
                walk(f"{prefix}.{k}" if prefix else str(k), node[k])
        elif isinstance(node, (list, tuple)):
            for i, item in enumerate(node):
                walk(f"{prefix}.{i}", item)
        else:
            out[prefix] = node

    walk("", tree)
    return out


def span_table(spans: Sequence[Span], limit: int = 40) -> str:
    """Human-readable span dump (used by examples): indented by depth."""
    by_id = {s.span_id: s for s in spans}
    lines = []
    for s in sorted(spans, key=lambda s: (s.start_ns, s.span_id))[:limit]:
        depth = 0
        parent = s.parent_id
        while parent and parent in by_id and depth < 8:
            parent = by_id[parent].parent_id
            depth += 1
        dur = f"{s.duration_ns:>10.1f}" if s.finished else "      open"
        attrs = " ".join(f"{k}={v}" for k, v in s.attrs.items())
        lines.append(f"  {s.start_ns:>12.1f} ns {dur} ns  "
                     f"{'  ' * depth}{s.name:<18} {s.actor:<10} {attrs}")
    if len(spans) > limit:
        lines.append(f"  ... {len(spans) - limit} more spans")
    return "\n".join(lines)
