"""repro.obs — deterministic observability for the simulated cluster.

One package, four pieces:

* :mod:`repro.obs.metrics` — counters / gauges / sim-time histograms in
  a single queryable registry, plus pull-model collectors consolidating
  the NIC, verb and fault counters;
* :mod:`repro.obs.spans` — typed, nested trace spans over the sim clock
  (``lock.acquire`` → ``peterson.compete`` → ``verb.rtt`` → ...);
* :mod:`repro.obs.phases` — the lock-phase latency decomposition
  (queue-wait / cross-cohort / critical-section / release) built on the
  span tree;
* :mod:`repro.obs.export` — Chrome/Perfetto trace-event JSON and flat
  metrics JSON, byte-deterministic across ``PYTHONHASHSEED``.

Everything is keyed to the simulated clock; nothing here reads wall
time, allocates on the disabled hot path, or perturbs the simulation
when enabled.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.spans import (
    COHORT_HANDOVER,
    FAULT_RETRY,
    LOCK_ACQUIRE,
    LOCK_RELEASE,
    MCS_QUEUE_WAIT,
    PETERSON_COMPETE,
    VERB_RTT,
    Span,
    SpanRecorder,
)
from repro.sim.core import Environment


@dataclass(frozen=True)
class ObsConfig:
    """What to record.  The default records nothing and costs one
    attribute read per instrumentation site."""

    spans: bool = False
    metrics: bool = False
    span_capacity: int = 1 << 18

    @property
    def any_enabled(self) -> bool:
        return self.spans or self.metrics


#: convenience presets
OBS_OFF = ObsConfig()
OBS_FULL = ObsConfig(spans=True, metrics=True)


class Observability:
    """Per-cluster bundle: one span recorder + one metrics registry."""

    def __init__(self, env: Environment, config: ObsConfig = OBS_OFF):
        self.config = config
        self.spans = SpanRecorder(env, capacity=config.span_capacity,
                                  enabled=config.spans)
        self.metrics = MetricsRegistry(enabled=config.metrics)

    @property
    def enabled(self) -> bool:
        return self.spans.enabled or self.metrics.enabled


__all__ = [
    "COHORT_HANDOVER", "FAULT_RETRY", "LOCK_ACQUIRE", "LOCK_RELEASE",
    "MCS_QUEUE_WAIT", "PETERSON_COMPETE", "VERB_RTT",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "ObsConfig", "OBS_OFF", "OBS_FULL", "Observability",
    "Span", "SpanRecorder",
]
