"""Capture plumbing: collect spans/metrics across workload runs.

The experiments CLI wants one ``--trace-out`` flag to instrument *every*
workload a whole experiment runs, without threading an argument through
each experiment module.  :class:`ObsCapture` is that seam: the CLI
activates a capture, ``run_workload`` consults :func:`active` to pick up
the default observability config and appends each finished cluster's
spans and metrics snapshot as a :class:`CapturedRun`, and the CLI
exports the accumulated runs when done.

The active-capture stack is explicit module state (not thread-local):
the simulator is single-threaded and deterministic, and experiments run
sequentially.  ``activate``/``deactivate`` nest for composability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.obs import ObsConfig
from repro.obs.spans import Span


@dataclass
class CapturedRun:
    """Spans + metrics snapshot of one cluster run, labelled for export."""

    label: str
    spans: list[Span] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)


@dataclass
class ObsCapture:
    """Accumulates :class:`CapturedRun` entries while active."""

    config: ObsConfig
    runs: list[CapturedRun] = field(default_factory=list)

    def add(self, label: str, spans: list[Span], metrics: dict) -> None:
        self.runs.append(CapturedRun(label, spans, metrics))


_ACTIVE: list[ObsCapture] = []


def activate(capture: ObsCapture) -> ObsCapture:
    _ACTIVE.append(capture)
    return capture


def deactivate(capture: ObsCapture) -> None:
    if capture in _ACTIVE:
        _ACTIVE.remove(capture)


def active() -> Optional[ObsCapture]:
    """The innermost active capture, or None."""
    return _ACTIVE[-1] if _ACTIVE else None
