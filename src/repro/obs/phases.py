"""Lock-phase latency decomposition over a span stream.

Splits every lock operation into an **exact contiguous partition** of
its end-to-end latency:

```
 lock() called      CS entered        unlock() called   unlock() returns
   |---- acquire span ----|-- critical section --|--- release span ---|
   |  queue_wait | cross_cohort                  |
```

* ``cross_cohort_ns`` — time inside ``peterson.compete`` child spans of
  the acquisition (the leader competing against the other cohort);
* ``queue_wait_ns`` — the rest of the acquire span: MCS queue linking,
  budget waits, and the verbs that implement them;
* ``critical_section_ns`` — acquire end to release start (application
  time under the lock);
* ``release_ns`` — the release span (tail CAS or successor handover).

Because the four pieces tile ``[acquire.start, release.end]`` with no
gaps or overlap, their sum equals the end-to-end latency *exactly* (up
to float addition), which ``ext_phases`` asserts against the workload
runner's independent latency samples.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.spans import (
    LOCK_ACQUIRE,
    LOCK_RELEASE,
    MCS_QUEUE_WAIT,
    PETERSON_COMPETE,
    Span,
)


@dataclass(frozen=True)
class LockOperation:
    """One acquire → critical section → release, decomposed."""

    actor: str
    lock: str
    kind: str
    start_ns: float
    queue_wait_ns: float
    cross_cohort_ns: float
    critical_section_ns: float
    release_ns: float
    #: sum of ``mcs.queue_wait`` children — the part of ``queue_wait_ns``
    #: spent blocked in the cohort queue (vs. issuing verbs/linking).
    mcs_blocked_ns: float
    #: ALock cohort annotation ("local"/"remote"; "" for other locks).
    cohort: str = ""

    @property
    def end_to_end_ns(self) -> float:
        return (self.queue_wait_ns + self.cross_cohort_ns
                + self.critical_section_ns + self.release_ns)

    @property
    def acquire_ns(self) -> float:
        return self.queue_wait_ns + self.cross_cohort_ns


def extract_operations(spans: list[Span]) -> list[LockOperation]:
    """Pair ``lock.acquire`` spans with the following ``lock.release`` of
    the same actor+lock and decompose.  Unpaired acquisitions (window
    expired mid-CS, failed acquires) are skipped."""
    children: dict[int, list[Span]] = {}
    for s in spans:
        if s.parent_id:
            children.setdefault(s.parent_id, []).append(s)

    # Per (actor, lock) streams in start order; generator execution is
    # sequential per actor, so acquire/release strictly alternate.
    streams: dict[tuple, list[Span]] = {}
    for s in spans:
        if s.name in (LOCK_ACQUIRE, LOCK_RELEASE) and s.finished:
            key = (s.actor, s.attrs.get("lock", "?"))
            streams.setdefault(key, []).append(s)

    ops: list[LockOperation] = []
    for (actor, lock_name), stream in sorted(streams.items()):
        stream.sort(key=lambda s: (s.start_ns, s.span_id))
        pending = None
        for s in stream:
            if s.name == LOCK_ACQUIRE:
                pending = s if s.attrs.get("outcome") == "ok" else None
            elif pending is not None:
                acq, rel = pending, s
                pending = None
                cross = sum(c.duration_ns for c in children.get(acq.span_id, ())
                            if c.name == PETERSON_COMPETE and c.finished)
                blocked = sum(c.duration_ns for c in children.get(acq.span_id, ())
                              if c.name == MCS_QUEUE_WAIT and c.finished)
                ops.append(LockOperation(
                    actor=actor,
                    lock=lock_name,
                    kind=acq.attrs.get("kind", "?"),
                    start_ns=acq.start_ns,
                    queue_wait_ns=acq.duration_ns - cross,
                    cross_cohort_ns=cross,
                    critical_section_ns=rel.start_ns - acq.end_ns,
                    release_ns=rel.duration_ns,
                    mcs_blocked_ns=blocked,
                    cohort=acq.attrs.get("cohort", ""),
                ))
    ops.sort(key=lambda op: (op.start_ns, op.actor, op.lock))
    return ops


_PHASES = ("queue_wait_ns", "cross_cohort_ns", "critical_section_ns",
           "release_ns")


def phase_summary(ops: list[LockOperation]) -> dict:
    """Aggregate a list of operations into mean-per-phase plus each
    phase's share of mean end-to-end latency."""
    n = len(ops)
    if n == 0:
        return {"count": 0}
    out: dict = {"count": n}
    e2e = sum(op.end_to_end_ns for op in ops) / n
    for phase in _PHASES:
        mean = sum(getattr(op, phase) for op in ops) / n
        out[f"mean_{phase}"] = mean
        out[f"share_{phase[:-3]}"] = mean / e2e if e2e else 0.0
    out["mean_end_to_end_ns"] = e2e
    out["mean_mcs_blocked_ns"] = sum(op.mcs_blocked_ns for op in ops) / n
    return out


def by_kind(ops: list[LockOperation]) -> dict[str, list[LockOperation]]:
    """Group operations by lock kind, insertion-ordered by first use."""
    groups: dict[str, list[LockOperation]] = {}
    for op in ops:
        groups.setdefault(op.kind, []).append(op)
    return groups
