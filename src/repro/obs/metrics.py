"""Deterministic metrics registry: one queryable tree for the cluster.

Two halves:

* **Push** — components create :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` handles up front (``registry.counter("verbs",
  verb="cas")``) and update them on the hot path.  When the registry is
  disabled every factory returns a shared null handle whose methods are
  no-ops, so call sites keep a single unconditional code path and the
  disabled run allocates nothing per event.
* **Pull** — subsystems that already keep their own counters (NICs, the
  network, the fault injector, the race auditor) register a *collector*
  callback.  Collectors are registered regardless of the enabled flag:
  they only run when :meth:`MetricsRegistry.collect` is called, so they
  cost nothing until someone asks.

:meth:`collect` snapshots both halves into one plain-dict tree (the
"queryable tree attached to the cluster context"); :meth:`flat` renders
it as sorted dotted-path leaves for JSON export and diffing.

Determinism: handles are stored in insertion-ordered dicts keyed by
``(name, sorted label items)``; snapshots sort by key, so output never
depends on hash order.  Histograms use fixed power-of-two ns buckets —
no data-dependent bucket allocation.
"""

from __future__ import annotations

from typing import Callable, Optional

# Power-of-two bucket upper bounds: 64 ns .. ~1.1 s, then +inf.
_BUCKET_BOUNDS = tuple(float(1 << e) for e in range(6, 31)) + (float("inf"),)


def _label_key(name: str, labels: dict) -> tuple:
    return (name,) + tuple(sorted(labels.items()))


class Counter:
    """Monotonically increasing count (ops, verbs, retries...)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self):
        return self.value


class Gauge:
    """Last-write-wins instantaneous value (queue depth, budget...)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def snapshot(self):
        return self.value


class Histogram:
    """Sim-time distribution in fixed power-of-two ns buckets."""

    __slots__ = ("name", "labels", "counts", "count", "sum", "min", "max")

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = labels
        self.counts = [0] * len(_BUCKET_BOUNDS)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value_ns: float) -> None:
        self.count += 1
        self.sum += value_ns
        if value_ns < self.min:
            self.min = value_ns
        if value_ns > self.max:
            self.max = value_ns
        lo, hi = 0, len(_BUCKET_BOUNDS) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if value_ns <= _BUCKET_BOUNDS[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1

    def snapshot(self):
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "sum_ns": self.sum,
            "mean_ns": self.sum / self.count,
            "min_ns": self.min,
            "max_ns": self.max,
            "buckets": {
                ("+inf" if b == float("inf") else f"le_{int(b)}"): c
                for b, c in zip(_BUCKET_BOUNDS, self.counts) if c
            },
        }


class _Null:
    """Shared no-op handle handed out when the registry is disabled."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value_ns: float) -> None:
        pass


_NULL = _Null()


class MetricsRegistry:
    """Counters/gauges/histograms plus pull-model collectors.

    ``enabled`` gates only the *push* side.  Collectors (NIC stats,
    verb counts, fault counters) are cheap pre-existing state and are
    always collectable, so ``cluster.stats()`` can be built on top of
    the registry unconditionally.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._metrics: dict[tuple, object] = {}
        self._collectors: dict[str, Callable[[], object]] = {}

    # -- push side ---------------------------------------------------------
    def _get(self, cls, name: str, labels: dict):
        if not self.enabled:
            return _NULL
        key = _label_key(name, labels)
        handle = self._metrics.get(key)
        if handle is None:
            handle = self._metrics[key] = cls(name, labels)
        elif not isinstance(handle, cls):
            raise TypeError(f"metric {name!r}{labels} already registered "
                            f"as {type(handle).__name__}")
        return handle

    def counter(self, name: str, **labels):
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels):
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels):
        return self._get(Histogram, name, labels)

    # -- pull side ---------------------------------------------------------
    def add_collector(self, name: str, fn: Callable[[], object]) -> None:
        """Register a snapshot callback under ``name`` in the tree.
        Last registration wins (a rebuilt subsystem may re-register)."""
        self._collectors[name] = fn

    # -- snapshots ---------------------------------------------------------
    def collect(self) -> dict:
        """One tree: each collector's snapshot plus pushed metrics under
        ``"app"``, grouped by metric name then sorted label string."""
        tree: dict = {}
        for name in sorted(self._collectors):
            tree[name] = self._collectors[name]()
        app: dict = {}
        for key in sorted(self._metrics, key=repr):
            handle = self._metrics[key]
            series = app.setdefault(handle.name, {})
            label_str = ",".join(f"{k}={v}" for k, v in
                                 sorted(handle.labels.items())) or "_"
            series[label_str] = handle.snapshot()
        if app:
            tree["app"] = app
        return tree

    def flat(self) -> dict:
        """The :meth:`collect` tree flattened to sorted ``a.b.c`` leaves
        (lists become ``.<index>``)."""
        out: dict = {}

        def walk(prefix: str, node) -> None:
            if isinstance(node, dict):
                for k in sorted(node, key=str):
                    walk(f"{prefix}.{k}" if prefix else str(k), node[k])
            elif isinstance(node, (list, tuple)):
                for i, item in enumerate(node):
                    walk(f"{prefix}.{i}", item)
            else:
                out[prefix] = node

        walk("", self.collect())
        return out

    def query(self, path: str):
        """Fetch one subtree/leaf by dotted path, e.g.
        ``query("network.verbs.cas")``."""
        node = self.collect()
        for part in path.split("."):
            if isinstance(node, dict) and part in node:
                node = node[part]
            elif isinstance(node, (list, tuple)) and part.isdigit() \
                    and int(part) < len(node):
                node = node[int(part)]
            else:
                raise KeyError(f"no metric at {path!r} (failed at {part!r})")
        return node
