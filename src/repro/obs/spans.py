"""Typed trace spans: the protocol interior as a tree of timed intervals.

A :class:`Span` is a named, sim-clock-timed interval attributed to one
actor (``"t1@n0"``).  Spans nest: the recorder keeps one open-span stack
per actor, so a verb issued while a lock acquisition is in flight
becomes a *child* of that acquisition — one lock operation is a span
tree (``lock.acquire`` → ``mcs.queue_wait`` / ``peterson.compete`` →
``verb.rtt`` → ``fault.retry``).

Span names are dotted and typed — the constants below are the
vocabulary the locks, verbs and fault layer emit, and the phase
decomposition (:mod:`repro.obs.phases`) and exporters
(:mod:`repro.obs.export`) consume.

Cost discipline: when the recorder is disabled (the default), call
sites guard on :attr:`SpanRecorder.enabled` and skip the call entirely,
so the hot path pays one attribute read and allocates nothing.  When
enabled, all timing comes from ``env.now`` — recording never advances
the simulation, so an instrumented run produces bit-identical timelines
to an uninstrumented one.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.sim.core import Environment

# -- span vocabulary --------------------------------------------------------
#: one full lock acquisition: ``Lock()`` entry to critical-section entry.
LOCK_ACQUIRE = "lock.acquire"
#: one full release: ``Unlock()`` entry to return.
LOCK_RELEASE = "lock.release"
#: waiting in a cohort's MCS queue for the lock to be passed.
MCS_QUEUE_WAIT = "mcs.queue_wait"
#: competing in the modified Peterson's algorithm (cross-cohort wait).
PETERSON_COMPETE = "peterson.compete"
#: passing the lock to an MCS successor (wait-for-link + budget write).
COHORT_HANDOVER = "cohort.handover"
#: one one-sided verb, send doorbell to completion.
VERB_RTT = "verb.rtt"
#: one retransmission wait after an injected loss (watchdog timeout).
FAULT_RETRY = "fault.retry"

SPAN_NAMES = (LOCK_ACQUIRE, LOCK_RELEASE, MCS_QUEUE_WAIT, PETERSON_COMPETE,
              COHORT_HANDOVER, VERB_RTT, FAULT_RETRY)


@dataclass
class Span:
    """One timed interval.  ``end_ns is None`` while still open."""

    span_id: int
    parent_id: int  #: 0 = root (no enclosing span on this actor's stack)
    name: str
    actor: str
    start_ns: float
    end_ns: Optional[float] = None
    attrs: dict = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.end_ns is not None

    @property
    def duration_ns(self) -> float:
        if self.end_ns is None:
            raise ValueError(f"span {self.name!r} (id {self.span_id}) still open")
        return self.end_ns - self.start_ns

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        end = f"{self.end_ns:.1f}" if self.finished else "…"
        return (f"[{self.start_ns:>12.1f}..{end} ns] {self.actor:<10} "
                f"{self.name:<18} {self.attrs}")


class SpanRecorder:
    """Bounded collector of finished spans + per-actor open-span stacks.

    Attributes:
        enabled: master switch.  Call sites must check it before calling
            :meth:`start` so the disabled path allocates nothing.
        capacity: maximum retained *finished* spans (oldest dropped
            first; :attr:`dropped` counts evictions).
    """

    def __init__(self, env: Environment, capacity: int = 1 << 18,
                 enabled: bool = False):
        self.env = env
        self.enabled = enabled
        self.capacity = capacity
        self._finished: deque = deque(maxlen=capacity)
        self._open: dict[str, list[Span]] = {}
        self._next_id = 1
        self.dropped = 0

    # -- recording ---------------------------------------------------------
    def start(self, actor: str, name: str, **attrs) -> Optional[Span]:
        """Open a span; it becomes the parent of later starts by the same
        actor until ended.  Returns None when disabled (callers should
        guard on :attr:`enabled` instead to skip the call outright)."""
        if not self.enabled:
            return None
        stack = self._open.get(actor)
        if stack is None:
            stack = self._open[actor] = []
        parent = stack[-1].span_id if stack else 0
        span = Span(self._next_id, parent, name, actor, self.env.now,
                    attrs=attrs)
        self._next_id += 1
        stack.append(span)
        return span

    def end(self, span: Optional[Span], **attrs) -> None:
        """Close ``span`` at the current sim time.  ``None`` is a no-op so
        callers can hold a maybe-disabled handle.  Any spans the actor
        left open *above* this one (an aborted interior) are closed with
        it, keeping the stack consistent after exceptions."""
        if span is None:
            return
        stack = self._open.get(span.actor)
        if stack and span in stack:
            while stack:
                top = stack.pop()
                if top is span:
                    break
                self._finish(top, {"outcome": "abandoned"})
        if attrs:
            span.attrs.update(attrs)
        self._finish(span, None)

    def annotate(self, actor: str, **attrs) -> None:
        """Attach attributes to the actor's innermost open span (no-op if
        disabled or nothing is open)."""
        if not self.enabled:
            return
        stack = self._open.get(actor)
        if stack:
            stack[-1].attrs.update(attrs)

    def _finish(self, span: Span, extra: Optional[dict]) -> None:
        span.end_ns = self.env.now
        if extra:
            span.attrs.update(extra)
        if len(self._finished) == self._finished.maxlen:
            self.dropped += 1
        self._finished.append(span)

    # -- access ------------------------------------------------------------
    def spans(self) -> list[Span]:
        """Finished spans, in end order."""
        return list(self._finished)

    def open_spans(self) -> list[Span]:
        """Spans still open (e.g. clients abandoned mid-op at window end),
        in deterministic (actor-insertion, stack) order."""
        return [s for stack in self._open.values() for s in stack]

    def __len__(self) -> int:
        return len(self._finished)

    def clear(self) -> None:
        self._finished.clear()
        self._open.clear()
