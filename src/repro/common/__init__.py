"""Shared utilities: errors, identifiers, RNG streams, tracing.

Everything in :mod:`repro` builds on these small pieces.  They are kept
dependency-free (stdlib + numpy only) so every subsystem can import them
without cycles.
"""

from repro.common.errors import (
    ReproError,
    SimulationError,
    MemoryError_,
    ProtocolError,
    ConfigError,
    AtomicityViolation,
)
from repro.common.ids import NodeId, ThreadId, GlobalThreadId, make_global_thread_id
from repro.common.rng import RngStreams, derive_seed
from repro.common.trace import TraceBuffer, TraceEvent

__all__ = [
    "ReproError",
    "SimulationError",
    "MemoryError_",
    "ProtocolError",
    "ConfigError",
    "AtomicityViolation",
    "NodeId",
    "ThreadId",
    "GlobalThreadId",
    "make_global_thread_id",
    "RngStreams",
    "derive_seed",
    "TraceBuffer",
    "TraceEvent",
]
