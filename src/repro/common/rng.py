"""Deterministic random-number streams.

Experiments must be exactly reproducible: the same seed must yield the
same event order, the same lock choices, and therefore the same measured
numbers.  We derive one independent :class:`numpy.random.Generator` per
named consumer (per thread, per workload component) from a root seed via
``SeedSequence.spawn``-style key hashing, so adding a new consumer never
perturbs the streams of existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.common.errors import ConfigError

#: key-part types whose ``repr`` is stable across processes and Python
#: versions.  Anything else (objects, lists, dicts, numpy arrays) may
#: embed memory addresses or version-dependent formatting in its repr,
#: which would silently break cross-process seed stability.
_PRIMITIVE_TYPES = (bool, int, float, str, bytes, type(None))


def _normalize_part(part: object, *, _path: str = "key part") -> object:
    """Validate one seed-key part, returning a canonical primitive form.

    numpy scalars are converted to their Python equivalents first: their
    reprs changed between numpy 1.x (``3``) and 2.x (``np.int64(3)``),
    so hashing them raw would tie seeds to the numpy version.
    """
    if isinstance(part, np.integer):
        part = int(part)
    elif isinstance(part, np.floating):
        part = float(part)
    elif isinstance(part, np.str_):
        part = str(part)
    if isinstance(part, tuple):
        return tuple(_normalize_part(p, _path=f"{_path}[{i}]")
                     for i, p in enumerate(part))
    if isinstance(part, _PRIMITIVE_TYPES):
        return part
    raise ConfigError(
        f"derive_seed {_path} has non-primitive type "
        f"{type(part).__name__!r}: repr() of arbitrary objects can embed "
        f"memory addresses, breaking cross-process seed stability; use "
        f"ints, strs, bytes, floats, bools, None, or tuples of those")


def derive_seed(root_seed: int, *key: object) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a structured key.

    Uses BLAKE2b over the repr of the key parts; stable across processes
    and Python versions (unlike ``hash()``).  Key parts are restricted to
    primitives (int/str/bytes/float/bool/None, numpy scalars, and tuples
    of those) — :class:`~repro.common.errors.ConfigError` is raised for
    anything whose repr is not process-independent.
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(root_seed)).encode())
    for i, part in enumerate(key):
        h.update(b"\x1f")
        h.update(repr(_normalize_part(part, _path=f"key part {i}")).encode())
    return int.from_bytes(h.digest(), "little")


class RngStreams:
    """A family of named, independent RNG streams under one root seed.

    >>> streams = RngStreams(42)
    >>> a = streams.get("workload", 0, 3)   # node 0, thread 3
    >>> b = streams.get("workload", 0, 4)
    >>> a is streams.get("workload", 0, 3)  # cached per key
    True
    """

    def __init__(self, root_seed: int):
        self.root_seed = int(root_seed)
        self._cache: dict[tuple, np.random.Generator] = {}

    def get(self, *key: object) -> np.random.Generator:
        """Return (and cache) the generator for ``key``."""
        k = tuple(key)
        gen = self._cache.get(k)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self.root_seed, *k))
            self._cache[k] = gen
        return gen

    def fork(self, *key: object) -> "RngStreams":
        """A child family whose streams are independent of this one's."""
        return RngStreams(derive_seed(self.root_seed, "fork", *key))
