"""Deterministic random-number streams.

Experiments must be exactly reproducible: the same seed must yield the
same event order, the same lock choices, and therefore the same measured
numbers.  We derive one independent :class:`numpy.random.Generator` per
named consumer (per thread, per workload component) from a root seed via
``SeedSequence.spawn``-style key hashing, so adding a new consumer never
perturbs the streams of existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, *key: object) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a structured key.

    Uses BLAKE2b over the repr of the key parts; stable across processes
    and Python versions (unlike ``hash()``).
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(root_seed)).encode())
    for part in key:
        h.update(b"\x1f")
        h.update(repr(part).encode())
    return int.from_bytes(h.digest(), "little")


class RngStreams:
    """A family of named, independent RNG streams under one root seed.

    >>> streams = RngStreams(42)
    >>> a = streams.get("workload", 0, 3)   # node 0, thread 3
    >>> b = streams.get("workload", 0, 4)
    >>> a is streams.get("workload", 0, 3)  # cached per key
    True
    """

    def __init__(self, root_seed: int):
        self.root_seed = int(root_seed)
        self._cache: dict[tuple, np.random.Generator] = {}

    def get(self, *key: object) -> np.random.Generator:
        """Return (and cache) the generator for ``key``."""
        k = tuple(key)
        gen = self._cache.get(k)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self.root_seed, *k))
            self._cache[k] = gen
        return gen

    def fork(self, *key: object) -> "RngStreams":
        """A child family whose streams are independent of this one's."""
        return RngStreams(derive_seed(self.root_seed, "fork", *key))
