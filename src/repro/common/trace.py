"""Structured tracing for protocol walkthroughs and debugging.

The quickstart example reproduces the paper's Figure 2 (an 8-frame
execution of two threads racing on one ALock) by replaying a trace of
protocol-level events.  Tracing is off by default and costs one branch
per event when disabled.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True)
class TraceEvent:
    """One protocol-level event.

    Attributes:
        time: simulated time in nanoseconds.
        actor: human-readable actor (e.g. ``"t1@n0"``).
        kind: event class (``"rCAS"``, ``"peterson.wait"``, ...).
        detail: free-form description of arguments/results.
    """

    time: float
    actor: str
    kind: str
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.time:>12.1f} ns] {self.actor:<10} {self.kind:<18} {self.detail}"


@dataclass
class TraceBuffer:
    """Bounded ring buffer of :class:`TraceEvent`.

    Attributes:
        capacity: maximum retained events (oldest dropped first).
        enabled: master switch; when False, :meth:`emit` is a no-op.
    """

    capacity: int = 65536
    enabled: bool = False
    _events: deque = field(default_factory=deque, repr=False)

    def __post_init__(self) -> None:
        # A maxlen deque evicts in C on append — no length check or
        # popleft on the emit path.
        self._events = deque(self._events, maxlen=self.capacity)

    def emit(self, time: float, actor: str, kind: str, detail: str = "") -> None:
        if not self.enabled:
            return
        self._events.append(TraceEvent(time, actor, kind, detail))

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        self._events.clear()

    def filtered(self, *, actor: str | None = None, kind: str | None = None) -> list[TraceEvent]:
        """Events whose actor and/or kind start with the given prefixes
        (both filters are prefix matches: ``actor="t1"`` selects
        ``t1@n0`` and ``t1@n1``, ``kind="mcs"`` selects ``mcs.*``)."""
        out = []
        for ev in self._events:
            if actor is not None and not ev.actor.startswith(actor):
                continue
            if kind is not None and not ev.kind.startswith(kind):
                continue
            out.append(ev)
        return out
