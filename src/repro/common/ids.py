"""Identifier types for nodes and threads.

The paper writes ``t_i^j`` for thread *j* on node *i*.  We keep plain
integers at runtime (they index numpy arrays and dict keys in hot paths)
but give them distinct aliases so signatures document which id a function
expects, and provide a packed *global* thread id used as the owner tag in
lock words.
"""

from __future__ import annotations

from typing import NewType

NodeId = NewType("NodeId", int)
ThreadId = NewType("ThreadId", int)

#: Packed (node, thread) identifier: ``node * _THREADS_PER_NODE_MAX + thread``.
GlobalThreadId = NewType("GlobalThreadId", int)

#: Upper bound on threads per node used for packing global ids.  The paper's
#: largest configuration is 12 threads/node; 4096 leaves generous headroom
#: while keeping global ids small enough to store in an 8-byte lock word.
_THREADS_PER_NODE_MAX = 4096


def make_global_thread_id(node: int, thread: int) -> GlobalThreadId:
    """Pack ``(node, thread)`` into a single integer id.

    Global ids start at 1 so that 0 can stand for "no owner" inside lock
    words (NULL semantics mirror the paper's descriptor pointers).
    """
    if node < 0 or thread < 0:
        raise ValueError(f"node/thread ids must be non-negative, got ({node}, {thread})")
    if thread >= _THREADS_PER_NODE_MAX:
        raise ValueError(f"thread id {thread} exceeds packing bound {_THREADS_PER_NODE_MAX}")
    return GlobalThreadId(node * _THREADS_PER_NODE_MAX + thread + 1)


def split_global_thread_id(gid: int) -> tuple[int, int]:
    """Inverse of :func:`make_global_thread_id`."""
    if gid < 1:
        raise ValueError(f"global thread ids start at 1, got {gid}")
    raw = gid - 1
    return raw // _THREADS_PER_NODE_MAX, raw % _THREADS_PER_NODE_MAX
