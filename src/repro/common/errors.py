"""Exception hierarchy for the ALock reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so
callers can catch library failures without masking genuine Python bugs
(``TypeError`` etc. propagate untouched).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """Invalid configuration value (bad node count, negative latency, ...)."""


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly.

    Examples: resuming a finished process, running a stopped environment,
    yielding a non-event from a process generator.
    """


class MemoryError_(ReproError):
    """RDMA memory misuse: out-of-bounds access, misaligned word op,
    allocation past the end of a region, or a local operation issued
    against memory that lives on a different node.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class ProtocolError(ReproError):
    """A lock protocol reached a state it never should (e.g. an unlock by
    a thread that does not hold the lock, or a descriptor reused while
    still enqueued)."""


class VerbTimeout(ReproError):
    """A one-sided verb exhausted its retry budget.

    Raised by the RDMA verb path when fault injection is active and every
    (re)transmission of an op was lost — the simulated equivalent of an
    RC queue pair's retry counter expiring with IBV_WC_RETRY_EXC_ERR.
    Carries enough context for recovery code to decide what died.
    """

    def __init__(self, message: str, *, verb: str | None = None,
                 target_node: int | None = None, attempts: int = 0):
        super().__init__(message)
        self.verb = verb
        self.target_node = target_node
        self.attempts = attempts
        #: filled in by the thread context that issued the verb.
        self.actor: str | None = None


class AtomicityViolation(ReproError):
    """Raised (in strict mode) or recorded (in audit mode) when two
    operations race in a cell of the paper's Table 1 that RDMA does not
    make atomic — e.g. a local CAS overlapping a remote CAS on the same
    8-byte word."""

    def __init__(self, message: str, *, address: int | None = None,
                 local_op: str | None = None, remote_op: str | None = None):
        super().__init__(message)
        self.address = address
        self.local_op = local_op
        self.remote_op = remote_op
