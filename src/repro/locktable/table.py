"""Distributed lock table implementation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from repro.common.errors import ConfigError
from repro.locks.base import DistributedLock, make_lock
from repro.memory.pointer import ptr_addr

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster import Cluster, ThreadContext


@dataclass
class LockEntry:
    """One table slot: the lock plus the 8-byte counter it guards (both
    on the same home node, as in the paper's partitioned table)."""

    index: int
    home_node: int
    lock: DistributedLock
    counter_ptr: int


class DistributedLockTable:
    """``n_locks`` locks striped across the cluster's nodes.

    The table size *is* the logical contention knob of §6: 20 locks =
    high contention, 100 = medium, 1000 = low.

    Args:
        cluster: target cluster.
        n_locks: table size (>= n_nodes so every node holds at least one
            lock, which the locality-driven workload requires).
        lock_kind: registered lock type name ("alock", "spinlock", "mcs").
        lock_options: forwarded to the lock factory (e.g. budgets).
        lease_ns: lease-based stall detection (0 = off).  When enabled,
            :meth:`acquire` races the lock acquisition against a lease
            timer; a waiter that watches the *same* holder sit on the
            lock for a full lease period records a lease expiration and
            flags the entry degraded.  Detection only — the stalled
            holder keeps the lock (forcibly breaking an MCS queue would
            violate the protocol) — but the run keeps making progress on
            every other lock and reports the degradation instead of
            looking healthy while wedged.
    """

    def __init__(self, cluster: "Cluster", n_locks: int, lock_kind: str,
                 lock_options: Optional[dict] = None, lease_ns: float = 0.0):
        if n_locks < cluster.n_nodes:
            raise ConfigError(
                f"need n_locks >= n_nodes ({cluster.n_nodes}) so each node "
                f"holds a partition; got {n_locks}")
        if lease_ns < 0:
            raise ConfigError(f"lease_ns must be >= 0, got {lease_ns}")
        self.cluster = cluster
        self.lock_kind = lock_kind
        self.lease_ns = lease_ns
        self._history = None
        # recovery / degraded-mode metrics
        self.lease_expirations = 0
        self.degraded_entries: set[int] = set()
        #: post-mortem JSON captured at the most recent lease expiry
        #: (None until one fires); see repro.obs.postmortem.
        self.last_postmortem: Optional[str] = None
        options = dict(lock_options or {})
        self.entries: list[LockEntry] = []
        self._by_node: list[list[int]] = [[] for _ in range(cluster.n_nodes)]
        for i in range(n_locks):
            node = i % cluster.n_nodes
            lock = make_lock(lock_kind, cluster, node,
                             name=f"{lock_kind}[{i}]@n{node}", **options)
            counter_ptr = cluster.alloc_on(node, 64)
            cluster.regions[node].label_word(ptr_addr(counter_ptr),
                                             f"counter[{i}]")
            self.entries.append(LockEntry(i, node, lock, counter_ptr))
            self._by_node[node].append(i)

    def __len__(self) -> int:
        return len(self.entries)

    def entry(self, index: int) -> LockEntry:
        return self.entries[index]

    def local_indices(self, node: int) -> list[int]:
        """Lock indices homed on ``node`` (local accesses for its threads)."""
        return self._by_node[node]

    def remote_indices(self, node: int) -> list[int]:
        """Lock indices homed elsewhere (remote accesses for ``node``'s threads)."""
        return [i for i in range(len(self.entries)) if self.entries[i].home_node != node]

    # -- operations ----------------------------------------------------------
    def acquire(self, ctx: "ThreadContext", index: int):
        """Acquire entry ``index``'s lock; with a lease configured, also
        watch for a stalled holder while waiting."""
        if self.lease_ns <= 0:
            yield from self.entries[index].lock.lock(ctx)
            return
        yield from self._acquire_leased(ctx, index)

    def _acquire_leased(self, ctx: "ThreadContext", index: int):
        """Race the acquisition against lease timers (recovery hook).

        The acquisition runs as a child process; every ``lease_ns`` the
        waiter wakes, consults the oracle holder state, and — if one
        holder spanned the whole period — reports the stall.  The lock
        protocol itself is untouched: no extra verbs, no reordering, and
        the child resumes exactly where the plain path would.
        """
        env = self.cluster.env
        entry = self.entries[index]
        lock = entry.lock
        waiter = env.process(lock.lock(ctx),
                             name=f"{ctx.actor}-acquire-{index}")
        while not waiter.triggered:
            timer = env.timeout(self.lease_ns)
            yield env.any_of([waiter, timer])
            if waiter.triggered:
                break
            holder = lock.holder_gid
            if holder != 0 and env.now - lock.holder_since >= self.lease_ns:
                # One holder sat on the lock for a full lease: stalled.
                self.lease_expirations += 1
                self.degraded_entries.add(index)
                fl = self.cluster.flight
                if fl is not None:
                    fl.note(ctx.actor, "lease.expired", lock.name, holder)
                # Freeze the evidence: a lease expiry is a failure even
                # though the run continues degraded.
                from repro.obs.postmortem import dump_json, snapshot

                self.last_postmortem = dump_json(snapshot(
                    self.cluster, reason="lease-expiry",
                    detail=f"{lock.name}: holder gid {holder} exceeded "
                           f"{self.lease_ns:.0f} ns lease "
                           f"(waiter {ctx.actor})",
                    table=self))
        if not waiter.ok:
            raise waiter.value

    def release(self, ctx: "ThreadContext", index: int):
        yield from self.entries[index].lock.unlock(ctx)

    def attach_history(self, recorder) -> None:
        """Record guarded-counter operations into a
        :class:`repro.schedcheck.history.HistoryRecorder` — each
        increment becomes an ``inc`` op returning the pre-increment
        value, the input of the linearizability checker."""
        self._history = recorder

    def guarded_increment(self, ctx: "ThreadContext", index: int):
        """Critical-section body: a deliberately non-atomic read-modify-
        write of the guarded counter, using the thread's natural API
        family.  Safe iff the lock provides mutual exclusion — lost
        updates surface in :meth:`check_counters`."""
        entry = self.entries[index]
        opid = (self._history.invoke(ctx.actor, f"counter[{index}]", "inc")
                if self._history is not None else None)
        if ctx.is_local(entry.counter_ptr):
            value = yield from ctx.read(entry.counter_ptr)
            yield from ctx.write(entry.counter_ptr, value + 1)
        else:
            value = yield from ctx.r_read(entry.counter_ptr)
            yield from ctx.r_write(entry.counter_ptr, value + 1)
        if opid is not None:
            self._history.respond(opid, value)

    # -- verification ---------------------------------------------------
    def counter_value(self, index: int) -> int:
        """Oracle read of one guarded counter (no simulated cost)."""
        entry = self.entries[index]
        return self.cluster.regions[entry.home_node].peek(ptr_addr(entry.counter_ptr))

    def total_count(self) -> int:
        return sum(self.counter_value(i) for i in range(len(self.entries)))

    def check_counters(self, expected_total: int) -> None:
        """Assert no updates were lost: counter sum == completed CS count."""
        actual = self.total_count()
        if actual != expected_total:
            raise AssertionError(
                f"lost updates detected: guarded counters sum to {actual}, "
                f"expected {expected_total} — mutual exclusion was violated")

    def total_acquisitions(self) -> int:
        return sum(e.lock.acquisitions for e in self.entries)

    def recovery_stats(self) -> dict:
        """Degraded-mode metrics from the lease monitor (all zero when
        leases are disabled)."""
        return {
            "lease_ns": self.lease_ns,
            "lease_expirations": self.lease_expirations,
            "degraded_locks": len(self.degraded_entries),
        }
