"""Distributed lock table (the paper's evaluation application, §6).

Locks are partitioned equally across nodes; each lock guards an 8-byte
counter in the same node's memory.  Clients acquire a lock, increment
the guarded counter from inside the critical section, and release.  The
final counter sum must equal the number of completed operations — a
machine-checked mutual-exclusion witness on every run (a lost update
means two threads overlapped in a critical section).
"""

from repro.locktable.table import DistributedLockTable, LockEntry

__all__ = ["DistributedLockTable", "LockEntry"]
